package adsketch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adsketch/internal/cluster"
	"adsketch/internal/core"
	"adsketch/internal/query"
)

// The scatter-gather serving tier.  A sketch set split by node ID into P
// partitions (SplitSketchSet) is served by P shard engines — in-process
// (NewPartitionedEngine), or remote adsserver workers each loading one
// partition file — behind one Coordinator that fans each protocol query
// out to the shards that can answer it and merges the partials:
//
//   - per-node queries (closeness, harmonic, neighborhood,
//     centrality_kernel) route each node to its owning shard and
//     reassemble the scores in request order;
//   - topk scatters to every shard and merges the per-shard rankings
//     with the single-set ordering (score descending, node ascending);
//   - the pairwise coordinated queries (jaccard, influence,
//     distance_bound) scatter sketch fetches to the owning shards and
//     evaluate at the coordinator, since their endpoints may live on
//     different shards.
//
// Every merge reproduces the single-set evaluation exactly, so a
// coordinator answer is bit-for-bit identical to one Engine over the
// unpartitioned set.

// Names of sketch set kinds in serving metadata (ShardMeta.Kind).
const (
	KindUniform     = "uniform"
	KindWeighted    = "weighted"
	KindApproximate = "approximate"
)

// Names of MinHash flavors in serving metadata (ShardMeta.Flavor).
const (
	FlavorBottomK    = "bottomk"
	FlavorKMins      = "kmins"
	FlavorKPartition = "kpartition"
)

// ShardMeta identifies what one serving backend holds: its position in
// the split, the global node range it owns, and the sketch parameters.
// It is the payload of the adsserver /v1/meta endpoint, which a
// coordinator reads at startup to build its routing table.
type ShardMeta struct {
	// Index and Count locate the shard in the split (a whole set is the
	// single partition of a 1-way split).
	Index int `json:"index"`
	Count int `json:"count"`
	// Lo and Hi delimit the owned global node IDs [Lo, Hi).
	Lo int32 `json:"lo"`
	Hi int32 `json:"hi"`
	// TotalNodes is the node count of the full (unsplit) set.
	TotalNodes int `json:"total_nodes"`
	// K is the sketch parameter.
	K int `json:"k"`
	// Kind is the set kind: uniform, weighted, or approximate.
	Kind string `json:"kind"`
	// Flavor is the MinHash flavor: bottomk, kmins, or kpartition.
	Flavor string `json:"flavor"`
}

// ShardBackend is one partition backend of a Coordinator: anything that
// can identify its node range and answer the wire protocol for it.
// *Engine implements it (a whole-set engine is the trivial 1-way shard,
// a NewShardEngine the real thing), *Coordinator implements it too (so
// coordination trees compose), and cmd/adsserver implements it over HTTP
// for remote workers.
type ShardBackend interface {
	// Meta identifies the shard's node range and sketch parameters.
	Meta() ShardMeta
	// Do answers one protocol request for nodes the shard owns.
	Do(ctx context.Context, req Request) (Response, error)
	// DoBatch answers a batch, reporting per-request failures inline.
	DoBatch(ctx context.Context, reqs []Request) ([]Response, error)
}

var (
	_ ShardBackend = (*Engine)(nil)
	_ ShardBackend = (*Coordinator)(nil)
)

// ErrShardUnavailable reports that a shard backend could not be reached:
// it is down, ejected by health checks, or exhausted its retry budget.
// Servers should map it to HTTP 503.  Under the "partial" failure policy
// a coordinator degrades around it instead of failing the query.
var ErrShardUnavailable = errors.New("adsketch: shard unavailable")

// coordConfig is the failure-semantics configuration of a Coordinator.
type coordConfig struct {
	timeout time.Duration // per-attempt shard deadline; 0 = none
	retries int           // extra attempt rounds over a replica group
	backoff time.Duration // base sleep before a retry, doubled per attempt
	hedge   time.Duration // hedged replica request delay; 0 = failover only
}

func defaultCoordConfig() coordConfig {
	return coordConfig{backoff: 25 * time.Millisecond}
}

// CoordinatorOption configures the failure semantics of a Coordinator:
// per-shard deadlines, bounded retries with backoff, and hedged replica
// requests.  The zero configuration reproduces the historical behavior
// (no deadline, no retry, no hedging), so results are byte-identical
// whenever no fault occurs.
type CoordinatorOption func(*coordConfig) error

// WithShardTimeout bounds every individual shard attempt: an attempt
// that has not answered within d fails with context.DeadlineExceeded and
// becomes eligible for retry or replica failover.  0 disables the bound.
func WithShardTimeout(d time.Duration) CoordinatorOption {
	return func(c *coordConfig) error {
		if d < 0 {
			return fmt.Errorf("%w: WithShardTimeout(%v), want >= 0", ErrBadOption, d)
		}
		c.timeout = d
		return nil
	}
}

// WithShardRetries grants n extra rounds over a partition's replica
// group after the first: with retries 1 and two replicas, a shard call
// attempts primary, replica, then (after backoff) primary and replica
// again.  Retries apply only to transient failures — bad requests and
// unsupported queries fail immediately.
func WithShardRetries(n int) CoordinatorOption {
	return func(c *coordConfig) error {
		if n < 0 {
			return fmt.Errorf("%w: WithShardRetries(%d), want >= 0", ErrBadOption, n)
		}
		c.retries = n
		return nil
	}
}

// WithRetryBackoff sets the base sleep inserted before each retried
// attempt; it doubles per attempt (capped at 1s).  The default is 25ms.
func WithRetryBackoff(d time.Duration) CoordinatorOption {
	return func(c *coordConfig) error {
		if d < 0 {
			return fmt.Errorf("%w: WithRetryBackoff(%v), want >= 0", ErrBadOption, d)
		}
		c.backoff = d
		return nil
	}
}

// WithHedgeDelay arms hedged requests on partitions that have replicas:
// when the primary has not answered within d, the same request is
// launched on a replica concurrently and the first success wins.  0 (the
// default) disables hedging; replicas then serve only as sequential
// failover targets after the primary fails.
func WithHedgeDelay(d time.Duration) CoordinatorOption {
	return func(c *coordConfig) error {
		if d < 0 {
			return fmt.Errorf("%w: WithHedgeDelay(%v), want >= 0", ErrBadOption, d)
		}
		c.hedge = d
		return nil
	}
}

// shardCounters is the per-partition failure-semantics telemetry.  All
// fields are atomics; a Coordinator is read under full query concurrency.
type shardCounters struct {
	calls     atomic.Int64 // shard calls issued (one per scatter leg)
	errors    atomic.Int64 // individual failed attempts
	failures  atomic.Int64 // calls that exhausted every attempt
	retries   atomic.Int64 // attempts beyond the first within one chain
	hedges    atomic.Int64 // hedged replica requests launched
	hedgeWins atomic.Int64 // hedged requests that produced the answer
	timeouts  atomic.Int64 // attempts cut by the per-shard deadline
}

// ShardCallStats is one partition's failure-semantics counters.
type ShardCallStats struct {
	Partition int   `json:"partition"`
	Replicas  int   `json:"replicas"`
	Calls     int64 `json:"calls"`
	Errors    int64 `json:"errors,omitempty"`
	Failures  int64 `json:"failures,omitempty"`
	Retries   int64 `json:"retries,omitempty"`
	Hedges    int64 `json:"hedges,omitempty"`
	HedgeWins int64 `json:"hedge_wins,omitempty"`
	Timeouts  int64 `json:"timeouts,omitempty"`
}

// CoordinatorStats is the coordinator's failure-semantics telemetry:
// per-partition call, error, retry, and hedge counters (what /statsz
// reports as "scatter" in adsserver's coordinator mode).
type CoordinatorStats struct {
	Shards []ShardCallStats `json:"shards"`
}

// Stats snapshots the per-partition call/error/retry/hedge counters.
func (c *Coordinator) Stats() CoordinatorStats {
	out := CoordinatorStats{Shards: make([]ShardCallStats, len(c.groups))}
	for i := range c.groups {
		st := &c.stats[i]
		out.Shards[i] = ShardCallStats{
			Partition: c.shards[i].Meta().Index,
			Replicas:  len(c.groups[i]) - 1,
			Calls:     st.calls.Load(),
			Errors:    st.errors.Load(),
			Failures:  st.failures.Load(),
			Retries:   st.retries.Load(),
			Hedges:    st.hedges.Load(),
			HedgeWins: st.hedgeWins.Load(),
			Timeouts:  st.timeouts.Load(),
		}
	}
	return out
}

// Coordinator serves the wire protocol over a complete set of shard
// backends, scattering each query to the shards that own its nodes and
// gathering the partial responses into the single-set answer.  It is
// safe for concurrent use when its backends are (both *Engine and the
// adsserver HTTP shard are).
type Coordinator struct {
	shards []ShardBackend   // per-partition primaries (groups[i][0])
	groups [][]ShardBackend // per-partition replica groups, primary first
	stats  []shardCounters  // per-partition failure telemetry
	cfg    coordConfig
	router *cluster.Router
	total  int
	k      int
	kind   string
	flavor string
}

// NewCoordinator builds a coordinator over a complete split: one backend
// per partition, covering every node exactly once, with equal sketch
// parameters.  Backends may be local engines, remote workers, or nested
// coordinators, in any order.  Options configure the failure semantics
// (per-shard timeouts, bounded retries with backoff); for replicated
// partitions and hedged requests see NewReplicatedCoordinator, of which
// this is the single-replica form.
func NewCoordinator(backends []ShardBackend, opts ...CoordinatorOption) (*Coordinator, error) {
	groups := make([][]ShardBackend, len(backends))
	for i, b := range backends {
		groups[i] = []ShardBackend{b}
	}
	return NewReplicatedCoordinator(groups, opts...)
}

// NewReplicatedCoordinator builds a coordinator over replica groups: one
// group per partition, each holding that partition's primary backend
// first and any number of replicas after it.  Every backend in a group
// must serve the identical shard (same node range, split position, and
// sketch parameters).  Replicas are sequential failover targets when the
// primary fails its attempts, and — with WithHedgeDelay — hedged
// concurrent targets when the primary is merely slow.
func NewReplicatedCoordinator(groups [][]ShardBackend, opts ...CoordinatorOption) (*Coordinator, error) {
	cfg := defaultCoordConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("%w: NewCoordinator with no shard backends", ErrBadOption)
	}
	backends := make([]ShardBackend, len(groups))
	for i, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("%w: partition %d has no backends", ErrBadOption, i)
		}
		prim := g[0].Meta()
		for r, b := range g[1:] {
			if b.Meta() != prim {
				return nil, fmt.Errorf("%w: partition %d replica %d serves %+v, primary %+v",
					ErrBadOption, i, r+1, b.Meta(), prim)
			}
		}
		backends[i] = g[0]
	}
	first := backends[0].Meta()
	ranges := make([]cluster.Range, len(backends))
	for i, b := range backends {
		m := b.Meta()
		if m.TotalNodes != first.TotalNodes || m.K != first.K || m.Kind != first.Kind || m.Flavor != first.Flavor {
			return nil, fmt.Errorf("%w: shard %d serves (%d nodes, k=%d, %s/%s), shard 0 (%d nodes, k=%d, %s/%s)",
				ErrBadOption, i, m.TotalNodes, m.K, m.Kind, m.Flavor,
				first.TotalNodes, first.K, first.Kind, first.Flavor)
		}
		ranges[i] = cluster.Range{Shard: i, Lo: m.Lo, Hi: m.Hi}
	}
	router, err := cluster.NewRouter(ranges, first.TotalNodes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadOption, err)
	}
	return &Coordinator{
		shards: backends,
		groups: groups,
		stats:  make([]shardCounters, len(groups)),
		cfg:    cfg,
		router: router,
		total:  first.TotalNodes,
		k:      first.K,
		kind:   first.Kind,
		flavor: first.Flavor,
	}, nil
}

// NumNodes returns the global node count.
func (c *Coordinator) NumNodes() int { return c.total }

// K returns the sketch parameter.
func (c *Coordinator) K() int { return c.k }

// Kind returns the served set kind (uniform, weighted, approximate).
func (c *Coordinator) Kind() string { return c.kind }

// NumShards returns the number of shard backends.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// ShardMetas returns the metadata of every backend, in backend order.
func (c *Coordinator) ShardMetas() []ShardMeta {
	out := make([]ShardMeta, len(c.shards))
	for i, b := range c.shards {
		out[i] = b.Meta()
	}
	return out
}

// Meta reports the coordinator's own serving identity: the whole node
// space, as the single partition of a 1-way split.  This is what lets a
// Coordinator stand in for an Engine behind another Coordinator.
func (c *Coordinator) Meta() ShardMeta {
	return ShardMeta{
		Index: 0, Count: 1,
		Lo: 0, Hi: int32(c.total), TotalNodes: c.total,
		K: c.k, Kind: c.kind, Flavor: c.flavor,
	}
}

// cacheStatser is the optional backend face for index-cache statistics;
// *Engine and *Coordinator provide it, remote shards keep their own
// (visible on their /statsz).
type cacheStatser interface {
	CacheStats() CacheStats
}

// CacheStats aggregates the index-cache counters of every local backend
// (engines and nested coordinators; remote shards report through their
// own /statsz).  The engines keep independent caches — one per
// partition — and this is their shared, serving-tier-wide view.
func (c *Coordinator) CacheStats() CacheStats {
	var st CacheStats
	for _, b := range c.shards {
		if s, ok := b.(cacheStatser); ok {
			sub := s.CacheStats()
			st.Shards += sub.Shards
			st.Slots += sub.Slots
			st.Built += sub.Built
			st.Hits += sub.Hits
			st.Misses += sub.Misses
		}
	}
	return st
}

// Do answers one protocol request by scatter-gather over the shards.
// Semantics, errors, and results are identical to Engine.Do over the
// unpartitioned set; when req.Explain is set, the response additionally
// carries the merge metadata.
func (c *Coordinator) Do(ctx context.Context, req Request) (Response, error) {
	q, err := req.Query()
	if err != nil {
		return Response{}, err
	}
	if err := q.validate(); err != nil {
		return Response{}, err
	}
	partial, err := req.partialPolicy()
	if err != nil {
		return Response{}, err
	}
	resp, err := q.scatter(ctx, c, partial)
	if err != nil {
		return Response{}, err
	}
	if !req.Explain {
		resp.Merge = nil
	}
	resp.ID = req.ID
	resp.Kind = q.kind()
	return resp, nil
}

// DoBatch answers a batch of protocol requests with the semantics of
// Engine.DoBatch: per-request failures are reported inline, and the call
// fails only when ctx is done.
//
// Unlike the sequential per-request loop, DoBatch plans the whole batch
// first and sends each shard ONE multi-request frame covering every
// sub-request the batch routes to it (the wire DoBatch array form), so a
// scatter costs one round trip per shard instead of one per (request,
// shard) pair.  The merges go through the same helpers as the unbatched
// scatters, so every response is byte-identical to what c.Do would have
// produced.  The pairwise coordinated kinds (jaccard, influence,
// distance_bound, sketch) keep the per-request path: their fan-out is
// data-dependent sketch fetching, not a per-shard sub-request.
func (c *Coordinator) DoBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	if len(reqs) < 2 {
		return doBatch(ctx, reqs, c.Do)
	}
	return c.doBatchScatter(ctx, reqs)
}

// batchPlan is one request's routing inside a batched scatter.
type batchPlan struct {
	err     error      // pre-scatter failure (validation, routing)
	do      bool       // answer via c.Do (pairwise kinds)
	score   scoreQuery // set for the per-node-scores family
	topk    *TopKQuery // set for topk
	partial bool       // resolved failure policy
	subs    []cluster.Sub
	slots   []int // per sub (score) or per shard (topk): index into that shard's frame
}

func (c *Coordinator) doBatchScatter(ctx context.Context, reqs []Request) ([]Response, error) {
	// Plan: validate each request and append its sub-requests to the
	// owning shards' frames, remembering each sub's slot.
	plans := make([]batchPlan, len(reqs))
	perShard := make([][]Request, len(c.shards))
	for i := range reqs {
		p := &plans[i]
		q, err := reqs[i].Query()
		if err != nil {
			p.err = err
			continue
		}
		if err := q.validate(); err != nil {
			p.err = err
			continue
		}
		if p.partial, err = reqs[i].partialPolicy(); err != nil {
			p.err = err
			continue
		}
		switch q := q.(type) {
		case scoreQuery:
			if p.subs, err = c.planScoreSubs(q.scoreNodes()); err != nil {
				p.err = err
				continue
			}
			p.score = q
			p.slots = make([]int, len(p.subs))
			for j, sub := range p.subs {
				p.slots[j] = len(perShard[sub.Shard])
				perShard[sub.Shard] = append(perShard[sub.Shard], q.subRequest(sub.Nodes))
			}
		case *TopKQuery:
			p.topk = q
			p.slots = make([]int, len(c.shards))
			for s := range c.shards {
				p.slots[s] = len(perShard[s])
				perShard[s] = append(perShard[s], Request{TopK: q})
			}
		default:
			p.do = true
		}
	}

	// Scatter: one batched call per shard that has work, concurrently,
	// under the usual failure semantics (timeout, retries, replicas,
	// hedging).  A shard-level failure is recorded, not fatal — which
	// requests it fails, and how, is a per-request policy decision.
	shardResps := make([][]Response, len(c.shards))
	shardErrs := make([]error, len(c.shards))
	var active []int
	for s := range perShard {
		if len(perShard[s]) > 0 {
			active = append(active, s)
		}
	}
	if len(active) > 0 {
		errs, err := cluster.ScatterAll(ctx, len(active), func(j int) error {
			s := active[j]
			resps, err := c.doShardBatch(ctx, s, perShard[s])
			if err != nil {
				return c.shardErr(s, err)
			}
			if len(resps) != len(perShard[s]) {
				return c.shardErr(s, fmt.Errorf("worker answered %d of %d batched requests", len(resps), len(perShard[s])))
			}
			shardResps[s] = resps
			return nil
		})
		if err != nil {
			return nil, err // the whole scatter was cancelled
		}
		for j, e := range errs {
			shardErrs[active[j]] = e
		}
	}

	// Merge: reassemble each request's response from its slots, through
	// the same merge helpers as the unbatched scatters.
	out := make([]Response, len(reqs))
	for i := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := &plans[i]
		var resp Response
		var err error
		switch {
		case p.err != nil:
			err = p.err
		case p.do:
			resp, err = c.Do(ctx, reqs[i])
		case p.score != nil:
			nodes := p.score.scoreNodes()
			cols := make([][]float64, len(p.subs))
			errs := make([]error, len(p.subs))
			for j, sub := range p.subs {
				cols[j], errs[j] = batchSlot(c, sub.Shard, p.slots[j], shardResps, shardErrs, Response.scoreCol)
			}
			if resp, err = c.mergeScoreScatter(nodes, p.subs, cols, errs, p.partial); err == nil {
				c.finalizeBatched(&resp, &reqs[i], p.score)
			}
		default:
			lists := make([][]Ranked, len(c.shards))
			errs := make([]error, len(c.shards))
			for s := range c.shards {
				lists[s], errs[s] = batchSlot(c, s, p.slots[s], shardResps, shardErrs, Response.rankingCol)
			}
			if resp, err = c.mergeTopKScatter(p.topk, lists, errs, p.partial); err == nil {
				c.finalizeBatched(&resp, &reqs[i], p.topk)
			}
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out[i] = Response{ID: reqs[i].ID, Error: err.Error()}
			continue
		}
		out[i] = resp
	}
	return out, nil
}

// scoreCol and rankingCol pick a merge column off a shard response.
func (r Response) scoreCol() []float64  { return r.Scores }
func (r Response) rankingCol() []Ranked { return r.Ranking }

// batchSlot extracts one sub-request's payload column from its shard's
// batched response, reconstructing the error the unbatched scatter
// would have seen: a shard-level failure keeps its shardErr wrapping,
// and a per-request failure the worker reported inline gets the same
// "shard N:" tag the single-request hop gives it.
func batchSlot[T any](c *Coordinator, shard, slot int, shardResps [][]Response, shardErrs []error, col func(Response) T) (T, error) {
	var zero T
	if err := shardErrs[shard]; err != nil {
		return zero, err
	}
	resp := shardResps[shard][slot]
	if resp.Error != "" {
		return zero, fmt.Errorf("shard %d: %s", c.shards[shard].Meta().Index, resp.Error)
	}
	return col(resp), nil
}

// finalizeBatched applies c.Do's response envelope to a batched merge.
func (c *Coordinator) finalizeBatched(resp *Response, req *Request, q Query) {
	if !req.Explain {
		resp.Merge = nil
	}
	resp.ID = req.ID
	resp.Kind = q.kind()
}

// mergeMeta records which shards a scatter consulted.
func (c *Coordinator) mergeMeta(subs []cluster.Sub) *MergeMeta {
	m := &MergeMeta{Partials: len(subs)}
	for _, s := range subs {
		m.Shards = append(m.Shards, c.shards[s.Shard].Meta().Index)
	}
	return m
}

// allShardsMeta is the merge metadata of a full fan-out.
func (c *Coordinator) allShardsMeta() *MergeMeta {
	m := &MergeMeta{Partials: len(c.shards)}
	for _, b := range c.shards {
		m.Shards = append(m.Shards, b.Meta().Index)
	}
	return m
}

// fetchMeta records the shards owning the given nodes, in routing
// order — the merge metadata of a pairwise sketch scatter.  Its callers
// have already validated every node against the router's cover, so an
// Owner failure here is a violated invariant, not a condition to skip:
// it is surfaced, never swallowed (swallowing made Explain metadata
// silently undercount partials).
func (c *Coordinator) fetchMeta(nodes []int32) (*MergeMeta, error) {
	m := &MergeMeta{}
	seen := make(map[int]bool)
	for _, v := range nodes {
		shard, err := c.router.Owner(v)
		if err != nil {
			return nil, fmt.Errorf("cluster invariant violated: validated node %d has no owning shard: %w", v, err)
		}
		m.Partials++
		if idx := c.shards[shard].Meta().Index; !seen[idx] {
			seen[idx] = true
			m.Shards = append(m.Shards, idx)
		}
	}
	return m, nil
}

// shardErr tags a backend error with the shard's partition index.
func (c *Coordinator) shardErr(shard int, err error) error {
	return fmt.Errorf("shard %d: %w", c.shards[shard].Meta().Index, err)
}

// retryableShardErr classifies a failed shard attempt: deterministic
// protocol rejections fail immediately (a retry would just repeat them),
// everything else — transport failures, timeouts, ejected shards — is
// transient and worth another attempt or a replica.
func retryableShardErr(err error) bool {
	switch {
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, ErrUnsupportedQuery),
		errors.Is(err, ErrBadOption),
		errors.Is(err, ErrUnknownDataset),
		errors.Is(err, ErrDatasetExists):
		return false
	}
	return true
}

// attemptShard makes one attempt against one backend under the
// per-attempt deadline, maintaining the error/timeout counters.
func attemptShard[T any](ctx context.Context, c *Coordinator, part int, be ShardBackend,
	invoke func(context.Context, ShardBackend) (T, error)) (T, error) {
	actx := ctx
	if c.cfg.timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.timeout)
		defer cancel()
	}
	v, err := invoke(actx, be)
	if err != nil {
		st := &c.stats[part]
		st.errors.Add(1)
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			st.timeouts.Add(1)
			err = fmt.Errorf("attempt exceeded the %v shard deadline: %w", c.cfg.timeout, err)
		}
	}
	return v, err
}

// chainShard tries the given backends sequentially — every backend in
// order, then cfg.retries more rounds with exponential backoff between
// failed attempts — returning the first success or the first error
// observed once the budget is spent.  Deterministic protocol errors and
// parent-context cancellation stop the chain immediately.
func chainShard[T any](ctx context.Context, c *Coordinator, part int, backends []ShardBackend,
	invoke func(context.Context, ShardBackend) (T, error)) (T, error) {
	var zero T
	var firstErr error
	st := &c.stats[part]
	attempt := 0
	for round := 0; round <= c.cfg.retries; round++ {
		for _, be := range backends {
			if attempt > 0 {
				st.retries.Add(1)
				if d := backoffDelay(c.cfg.backoff, attempt); d > 0 {
					t := time.NewTimer(d)
					select {
					case <-ctx.Done():
						t.Stop()
						return zero, firstOf(firstErr, ctx.Err())
					case <-t.C:
					}
				}
			}
			attempt++
			v, err := attemptShard(ctx, c, part, be, invoke)
			if err == nil {
				return v, nil
			}
			if firstErr == nil {
				firstErr = err
			}
			if !retryableShardErr(err) {
				return zero, err
			}
			if ctx.Err() != nil {
				return zero, firstErr
			}
		}
	}
	return zero, firstErr
}

// backoffDelay is the sleep before retry attempt n (1-based beyond the
// first attempt): base doubled per attempt, capped at 1s.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << (attempt - 1)
	if d > time.Second || d <= 0 { // <= 0 guards shift overflow
		d = time.Second
	}
	return d
}

func firstOf(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}

// shardCall is every scatter leg's entry point: it calls partition
// part's replica group under the coordinator's failure semantics —
// per-attempt deadline, bounded retries with backoff, sequential replica
// failover, and (when WithHedgeDelay armed it) a hedged concurrent
// replica request racing a slow primary.
func shardCall[T any](ctx context.Context, c *Coordinator, part int,
	invoke func(context.Context, ShardBackend) (T, error)) (T, error) {
	st := &c.stats[part]
	st.calls.Add(1)
	group := c.groups[part]
	var v T
	var err error
	if c.cfg.hedge > 0 && len(group) > 1 {
		v, err = hedgedCall(ctx, c, part, invoke)
	} else {
		v, err = chainShard(ctx, c, part, group, invoke)
	}
	if err != nil {
		st.failures.Add(1)
	}
	return v, err
}

// hedgedCall races the primary chain against a delayed replica chain:
// the replica launches when the primary has not answered within the
// hedge delay (or immediately, as failover, when the primary chain
// fails first), and the first success wins.  Both chains share the
// parent context; the loser is cancelled.
func hedgedCall[T any](ctx context.Context, c *Coordinator, part int,
	invoke func(context.Context, ShardBackend) (T, error)) (T, error) {
	group := c.groups[part]
	st := &c.stats[part]
	type result struct {
		v      T
		err    error
		hedged bool
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2) // buffered: the losing chain must not leak
	run := func(backends []ShardBackend, hedged bool) {
		v, err := chainShard(cctx, c, part, backends, invoke)
		ch <- result{v, err, hedged}
	}
	go run(group[:1], false)
	timer := time.NewTimer(c.cfg.hedge)
	defer timer.Stop()
	pending := 1
	launched := false
	launch := func() {
		launched = true
		pending++
		st.hedges.Add(1)
		go run(group[1:], true)
	}
	var firstErr error
	for pending > 0 {
		var r result
		if launched {
			r = <-ch
		} else {
			select {
			case r = <-ch:
			case <-timer.C:
				launch()
				continue
			}
		}
		pending--
		if r.err == nil {
			if r.hedged {
				st.hedgeWins.Add(1)
			}
			return r.v, nil
		}
		if firstErr == nil {
			firstErr = r.err
		}
		// The primary chain failed before the hedge fired: launch the
		// replica chain immediately as failover rather than waiting out
		// the timer.
		if !launched && ctx.Err() == nil {
			launch()
		}
	}
	var zero T
	return zero, firstErr
}

// doShard answers one request on partition part under the failure
// semantics (timeout, retries, replicas, hedging).
func (c *Coordinator) doShard(ctx context.Context, part int, req Request) (Response, error) {
	return shardCall(ctx, c, part, func(ctx context.Context, be ShardBackend) (Response, error) {
		return be.Do(ctx, req)
	})
}

// doShardBatch answers one request batch on partition part under the
// failure semantics.  Protocol queries are read-only, so a retried or
// hedged batch is safe to repeat.
func (c *Coordinator) doShardBatch(ctx context.Context, part int, reqs []Request) ([]Response, error) {
	return shardCall(ctx, c, part, func(ctx context.Context, be ShardBackend) ([]Response, error) {
		return be.DoBatch(ctx, reqs)
	})
}

// scatterScores fans a per-node query out to the shards owning its
// nodes (mk builds the per-shard request from a node subset) and merges
// the partial score vectors back into request order.  Under the
// "partial" policy a failed shard degrades the answer instead of
// failing it: its nodes' scores stay 0 and are listed in
// Response.Missing, Response.Partial is set, and the merge metadata
// names the failed partitions.  When every shard answers, the fault
// path is never taken and the response is byte-identical to the fail
// policy's.
func (c *Coordinator) scatterScores(ctx context.Context, q scoreQuery, partialPolicy bool) (Response, error) {
	nodes := q.scoreNodes()
	subs, err := c.planScoreSubs(nodes)
	if err != nil {
		return Response{}, err
	}
	cols := make([][]float64, len(subs))
	if !partialPolicy {
		err = cluster.Scatter(ctx, len(subs), func(i int) error {
			resp, err := c.doShard(ctx, subs[i].Shard, q.subRequest(subs[i].Nodes))
			if err != nil {
				return c.shardErr(subs[i].Shard, err)
			}
			cols[i] = resp.Scores
			return nil
		})
		if err != nil {
			return Response{}, err
		}
		return c.mergeScoreScatter(nodes, subs, cols, nil, false)
	}
	errs, err := cluster.ScatterAll(ctx, len(subs), func(i int) error {
		resp, err := c.doShard(ctx, subs[i].Shard, q.subRequest(subs[i].Nodes))
		if err != nil {
			return c.shardErr(subs[i].Shard, err)
		}
		cols[i] = resp.Scores
		return nil
	})
	if err != nil {
		return Response{}, err // the whole scatter was cancelled
	}
	return c.mergeScoreScatter(nodes, subs, cols, errs, true)
}

// planScoreSubs validates a score query's nodes and routes them to their
// owning shards.
func (c *Coordinator) planScoreSubs(nodes []int32) ([]cluster.Sub, error) {
	if err := query.CheckNodes(c.total, nodes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	subs, err := c.router.Plan(nodes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return subs, nil
}

// mergeScoreScatter splices the per-sub score columns of one scatter
// back into request order under the failure policy.  errs[i] reports sub
// i's outcome; a nil errs means every sub answered.  Both scatterScores
// and the batched fan-out of DoBatch merge through here, which is what
// keeps a batched query byte-identical to the unbatched one.
func (c *Coordinator) mergeScoreScatter(nodes []int32, subs []cluster.Sub, cols [][]float64, errs []error, partialPolicy bool) (Response, error) {
	ok := make([]bool, len(subs))
	var failed []int
	var firstErr error
	for i := range subs {
		var e error
		if errs != nil {
			e = errs[i]
		}
		ok[i] = e == nil
		if e != nil {
			failed = append(failed, c.shards[subs[i].Shard].Meta().Index)
			if firstErr == nil {
				firstErr = e
			}
		}
	}
	if !partialPolicy {
		if firstErr != nil {
			return Response{}, firstErr
		}
		scores, err := cluster.MergeScores(len(nodes), subs, cols)
		if err != nil {
			return Response{}, err
		}
		return Response{Scores: scores, Merge: c.mergeMeta(subs)}, nil
	}
	if len(failed) == len(subs) {
		// Nothing answered; a fully-degraded response would be all noise.
		return Response{}, firstErr
	}
	scores, missingPos, err := cluster.MergeScoresPartial(len(nodes), subs, cols, ok)
	if err != nil {
		return Response{}, err
	}
	var missing []int32 // nil (omitted on the wire) when nothing failed
	for _, pos := range missingPos {
		missing = append(missing, nodes[pos])
	}
	meta := c.mergeMeta(subs)
	meta.Partials -= len(failed)
	sort.Ints(failed)
	meta.Failed = failed
	return Response{Scores: scores, Missing: missing, Partial: len(failed) > 0, Merge: meta}, nil
}

// scatterTopK fans a topk query to every shard and merges the per-shard
// rankings into the global top-k.  Under the "partial" policy the
// rankings of the shards that answered still merge — the answer may
// miss members owned by a failed shard, so it is flagged Partial and
// the merge metadata names the failed partitions.
func (c *Coordinator) scatterTopK(ctx context.Context, q *TopKQuery, partialPolicy bool) (Response, error) {
	lists := make([][]Ranked, len(c.shards))
	if !partialPolicy {
		err := cluster.Scatter(ctx, len(c.shards), func(i int) error {
			resp, err := c.doShard(ctx, i, Request{TopK: q})
			if err != nil {
				return c.shardErr(i, err)
			}
			lists[i] = resp.Ranking
			return nil
		})
		if err != nil {
			return Response{}, err
		}
		return c.mergeTopKScatter(q, lists, nil, false)
	}
	errs, err := cluster.ScatterAll(ctx, len(c.shards), func(i int) error {
		resp, err := c.doShard(ctx, i, Request{TopK: q})
		if err != nil {
			return c.shardErr(i, err)
		}
		lists[i] = resp.Ranking
		return nil
	})
	if err != nil {
		return Response{}, err
	}
	return c.mergeTopKScatter(q, lists, errs, true)
}

// mergeTopKScatter merges per-shard rankings under the failure policy;
// the shared merge of scatterTopK and the batched fan-out of DoBatch.
func (c *Coordinator) mergeTopKScatter(q *TopKQuery, lists [][]Ranked, errs []error, partialPolicy bool) (Response, error) {
	var failed []int
	var firstErr error
	for i := range lists {
		var e error
		if errs != nil {
			e = errs[i]
		}
		if e != nil {
			lists[i] = nil
			failed = append(failed, c.shards[i].Meta().Index)
			if firstErr == nil {
				firstErr = e
			}
		}
	}
	if !partialPolicy {
		if firstErr != nil {
			return Response{}, firstErr
		}
		return Response{Ranking: cluster.MergeTopK(q.K, lists), Merge: c.allShardsMeta()}, nil
	}
	if len(failed) == len(c.shards) {
		return Response{}, firstErr
	}
	meta := c.allShardsMeta()
	meta.Partials -= len(failed)
	sort.Ints(failed)
	meta.Failed = failed
	return Response{Ranking: cluster.MergeTopK(q.K, lists), Partial: len(failed) > 0, Merge: meta}, nil
}

// requireCoordinated gates the cross-sketch queries (jaccard, influence,
// distance_bound, sketch fetches): they need uniform-rank bottom-k
// coordinated sketches.
func (c *Coordinator) requireCoordinated() error {
	if c.kind != KindUniform || c.flavor != FlavorBottomK {
		return fmt.Errorf("%w: requires uniform-rank bottom-k coordinated sketches, coordinator serves %s/%s sketches",
			ErrUnsupportedQuery, c.kind, c.flavor)
	}
	return nil
}

// fetchSketches batch-fetches the bottom-k sketches of many global
// nodes, one sketch-query batch per owning shard, scattered
// concurrently.
func (c *Coordinator) fetchSketches(ctx context.Context, nodes []int32) (map[int32]*core.ADS, error) {
	if err := c.requireCoordinated(); err != nil {
		return nil, err
	}
	if err := query.CheckNodes(c.total, nodes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	subs, err := c.router.Plan(nodes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	out := make(map[int32]*core.ADS, len(nodes))
	var mu sync.Mutex
	err = cluster.Scatter(ctx, len(subs), func(i int) error {
		reqs := make([]Request, len(subs[i].Nodes))
		for j, v := range subs[i].Nodes {
			reqs[j] = Request{Sketch: &SketchQuery{Node: v}}
		}
		resps, err := c.doShardBatch(ctx, subs[i].Shard, reqs)
		if err != nil {
			return c.shardErr(subs[i].Shard, err)
		}
		if len(resps) != len(reqs) {
			return c.shardErr(subs[i].Shard, fmt.Errorf("returned %d responses for %d sketch fetches", len(resps), len(reqs)))
		}
		fetched := make([]*core.ADS, len(resps))
		for j, r := range resps {
			if r.Error != "" {
				return c.shardErr(subs[i].Shard, fmt.Errorf("fetching sketch of node %d: %s", subs[i].Nodes[j], r.Error))
			}
			a, err := adsFromWire(subs[i].Nodes[j], c.k, r.Entries)
			if err != nil {
				return c.shardErr(subs[i].Shard, err)
			}
			fetched[j] = a
		}
		mu.Lock()
		defer mu.Unlock()
		for j, a := range fetched {
			out[subs[i].Nodes[j]] = a
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// adsFromWire rebuilds a validated bottom-k ADS from transported sketch
// entries.  encoding/json emits the shortest float64 form that round
// trips exactly, so a sketch fetched from a remote shard is bit-for-bit
// the stored one.
func adsFromWire(owner int32, k int, entries []SketchEntry) (*core.ADS, error) {
	raw := make([]core.Entry, len(entries))
	for i, e := range entries {
		raw[i] = core.Entry{Node: e.Node, Dist: e.Dist, Rank: e.Rank}
	}
	a, err := core.ADSFromEntries(owner, k, raw)
	if err != nil {
		return nil, fmt.Errorf("sketch of node %d arrived corrupt: %w", owner, err)
	}
	return a, nil
}
