package adsketch

import (
	"context"
	"fmt"
	"sort"

	"adsketch/internal/core"
	"adsketch/internal/query"
)

// Engine answers batch, context-aware queries over a sketch set.  It is
// the serving layer for heavy query traffic: each node's HIP query index
// (HIPIndex) is built lazily on first touch and cached, so repeated
// queries against a node cost one binary search (neighborhood sizes) or
// O(1) (closeness, harmonic) instead of re-deriving the sketch's adjusted
// weights; batches are evaluated by a worker pool and honor context
// cancellation.
//
// An Engine is safe for concurrent use by multiple goroutines.  The
// estimates it returns are bit-for-bit identical to the per-call
// estimators (Centrality, EstimateNeighborhoodHIP, EstimateQ) on the same
// sketches.
type Engine struct {
	set     SketchSet
	workers int
	cache   *query.IndexCache
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine) error

// WithQueryParallelism bounds the number of worker goroutines evaluating
// one batch query.  0 (the default) means GOMAXPROCS.
func WithQueryParallelism(workers int) EngineOption {
	return func(e *Engine) error {
		if workers < 0 {
			return fmt.Errorf("%w: WithQueryParallelism(%d), workers must be >= 0 (0 = GOMAXPROCS)", ErrBadOption, workers)
		}
		e.workers = workers
		return nil
	}
}

// NewEngine wraps a sketch set (of any kind: uniform, weighted, or
// approximate) for batch serving.
func NewEngine(set SketchSet, opts ...EngineOption) (*Engine, error) {
	e := &Engine{set: set}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("%w: nil EngineOption", ErrBadOption)
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	e.cache = query.NewIndexCache(set.NumNodes(), func(v int32) *core.HIPIndex {
		return core.NewHIPIndex(set.SketchOf(v))
	})
	return e, nil
}

// Set returns the underlying sketch set.
func (e *Engine) Set() SketchSet { return e.set }

// Index returns node v's cached HIP query index, building it on first
// use.  The index is immutable and safe to share.
func (e *Engine) Index(v int32) (*HIPIndex, error) {
	if err := query.CheckNodes(e.set.NumNodes(), []int32{v}); err != nil {
		return nil, err
	}
	return e.cache.Get(v), nil
}

// CachedIndices returns how many per-node indices have been built so far.
func (e *Engine) CachedIndices() int { return e.cache.Cached() }

// batch evaluates f on the cached index of every queried node with the
// engine's worker pool.  On error (including context cancellation) the
// partial results are discarded.
func (e *Engine) batch(ctx context.Context, nodes []int32, f func(*core.HIPIndex) float64) ([]float64, error) {
	if err := query.CheckNodes(e.set.NumNodes(), nodes); err != nil {
		return nil, err
	}
	out := make([]float64, len(nodes))
	err := query.ForEach(ctx, e.workers, len(nodes), func(i int) error {
		out[i] = f(e.cache.Get(nodes[i]))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Closeness returns the HIP estimate of the classic closeness centrality
// 1/Σ_j d_vj for each queried node (0 for isolated nodes).
func (e *Engine) Closeness(ctx context.Context, nodes ...int32) ([]float64, error) {
	return e.batch(ctx, nodes, (*core.HIPIndex).Closeness)
}

// Harmonic returns the HIP estimate of Σ_{j != v} 1/d_vj for each queried
// node.
func (e *Engine) Harmonic(ctx context.Context, nodes ...int32) ([]float64, error) {
	return e.batch(ctx, nodes, (*core.HIPIndex).Harmonic)
}

// NeighborhoodSizes returns the HIP estimate of n_d(v) = |N_d(v)| (or the
// weighted cardinality, for weighted sets) for each queried node.
func (e *Engine) NeighborhoodSizes(ctx context.Context, d float64, nodes ...int32) ([]float64, error) {
	return e.batch(ctx, nodes, func(x *core.HIPIndex) float64 { return x.Neighborhood(d) })
}

// EstimateQBatch returns the HIP estimate of Q_g(v) = Σ_j g(j, d_vj)
// (equation (5) of the paper) for each queried node.  g must be safe for
// concurrent invocation.
func (e *Engine) EstimateQBatch(ctx context.Context, g func(node int32, dist float64) float64, nodes ...int32) ([]float64, error) {
	return e.batch(ctx, nodes, func(x *core.HIPIndex) float64 { return x.EstimateQ(g) })
}

// TopCloseness returns the estimated top-n nodes by closeness centrality,
// highest first (ties broken by node ID), scoring every node of the set
// with the worker pool.
func (e *Engine) TopCloseness(ctx context.Context, n int) ([]Ranked, error) {
	return e.topBy(ctx, n, (*core.HIPIndex).Closeness)
}

// TopHarmonic returns the estimated top-n nodes by harmonic centrality.
func (e *Engine) TopHarmonic(ctx context.Context, n int) ([]Ranked, error) {
	return e.topBy(ctx, n, (*core.HIPIndex).Harmonic)
}

func (e *Engine) topBy(ctx context.Context, n int, score func(*core.HIPIndex) float64) ([]Ranked, error) {
	total := e.set.NumNodes()
	all := make([]Ranked, total)
	err := query.ForEach(ctx, e.workers, total, func(i int) error {
		all[i] = Ranked{Node: int32(i), Score: score(e.cache.Get(int32(i)))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n], nil
}
