package adsketch

import (
	"context"
	"fmt"
	"math"

	"adsketch/internal/core"
	"adsketch/internal/query"
)

// Engine answers batch, context-aware queries over a sketch set.  It is
// the serving layer for heavy query traffic: each node's HIP query index
// (HIPIndex) is built lazily on first touch and cached, so repeated
// queries against a node cost one binary search (neighborhood sizes) or
// O(1) (closeness, harmonic) instead of re-deriving the sketch's adjusted
// weights; batches are evaluated by a worker pool and honor context
// cancellation.  The cache is sharded (WithShards) so concurrent batches
// do not contend on one structure.
//
// An Engine serves either a whole sketch set (NewEngine) or one
// node-range partition of a split set (NewShardEngine), in which case it
// answers for the global node IDs it owns and rejects the rest — the
// worker half of the scatter-gather serving tier whose coordinator half
// is Coordinator.
//
// Engine.Do / Engine.DoBatch dispatch the typed wire protocol (Request /
// Response); the named methods below are thin wrappers over the same
// dispatch, so a query served over a transport is bit-for-bit identical
// to the direct method call.  An Engine is safe for concurrent use by
// multiple goroutines, and its estimates equal the per-call estimators
// (Centrality, EstimateNeighborhoodHIP, EstimateQ) on the same sketches.
type Engine struct {
	set     SketchSet
	lo      int32 // global ID of local sketch 0 (non-zero for shard engines)
	total   int   // global node count (== set.NumNodes() for whole sets)
	meta    ShardMeta
	workers int
	shards  int
	cache   *query.IndexCache
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine) error

// WithQueryParallelism bounds the number of worker goroutines evaluating
// one batch query.  0 (the default) means GOMAXPROCS.
func WithQueryParallelism(workers int) EngineOption {
	return func(e *Engine) error {
		if workers < 0 {
			return fmt.Errorf("%w: WithQueryParallelism(%d), workers must be >= 0 (0 = GOMAXPROCS)", ErrBadOption, workers)
		}
		e.workers = workers
		return nil
	}
}

// WithShards sets the number of index-cache shards.  Concurrent batch
// queries touch per-shard slot arrays and counters, so more shards mean
// less contention; the default (0) sizes the shard count to GOMAXPROCS.
func WithShards(n int) EngineOption {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("%w: WithShards(%d), shards must be >= 0 (0 = auto)", ErrBadOption, n)
		}
		e.shards = n
		return nil
	}
}

// newEngine finishes Engine construction shared by NewEngine and
// NewShardEngine: option application, meta, and the index cache over the
// local sketches.
func newEngine(e *Engine, meta ShardMeta, opts []EngineOption) (*Engine, error) {
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("%w: nil EngineOption", ErrBadOption)
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	e.meta = meta
	set := e.set
	// Cache slots are local indices: global node v lives in slot v - lo.
	// Frame-backed sets (every set built or loaded by this package) hand
	// out views into one columnar index arena shared by the whole set —
	// no per-node allocation; the generic path rebuilds an index from the
	// sketch for externally implemented SketchSets.
	build := func(local int32) *core.HIPIndex {
		return core.NewHIPIndex(set.SketchOf(local))
	}
	if is, ok := set.(interface{ Index(v int32) *core.HIPIndex }); ok {
		build = is.Index
	}
	e.cache = query.NewIndexCache(set.NumNodes(), e.shards, build)
	return e, nil
}

// NewEngine wraps a whole sketch set (of any kind: uniform, weighted, or
// approximate) for batch serving.
func NewEngine(set SketchSet, opts ...EngineOption) (*Engine, error) {
	n := set.NumNodes()
	meta := ShardMeta{
		Index: 0, Count: 1,
		Lo: 0, Hi: int32(n), TotalNodes: n,
		K: set.K(), Kind: kindOf(set), Flavor: flavorOf(set),
	}
	return newEngine(&Engine{set: set, lo: 0, total: n}, meta, opts)
}

// NewShardEngine wraps one partition of a split sketch set for batch
// serving: the engine answers every per-node protocol query for the
// global node IDs in [p.Lo(), p.Hi()), rejects nodes it does not own,
// and evaluates topk over its own nodes only — the partial a Coordinator
// merges into the global ranking.
func NewShardEngine(p *Partition, opts ...EngineOption) (*Engine, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil Partition", ErrBadOption)
	}
	set := SketchSet(p.Set())
	meta := ShardMeta{
		Index: p.Index(), Count: p.Count(),
		Lo: p.Lo(), Hi: p.Hi(), TotalNodes: p.TotalNodes(),
		K: set.K(), Kind: kindOf(set), Flavor: flavorOf(set),
	}
	return newEngine(&Engine{set: set, lo: p.Lo(), total: p.TotalNodes()}, meta, opts)
}

// NewPartitionedEngine splits the set by node ID into the given number
// of partitions and returns a Coordinator serving them through one
// in-process shard Engine each — single-process scatter-gather, whose
// answers are bit-for-bit identical to one Engine over the whole set.
// The partitions alias the set's sketches, so the split costs no sketch
// memory; the per-partition engines keep independent index caches whose
// combined statistics Coordinator.CacheStats reports.
func NewPartitionedEngine(set SketchSet, partitions int, opts ...EngineOption) (*Coordinator, error) {
	parts, err := SplitSketchSet(set, partitions)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadOption, err)
	}
	backends := make([]ShardBackend, len(parts))
	for i, p := range parts {
		eng, err := NewShardEngine(p, opts...)
		if err != nil {
			return nil, err
		}
		backends[i] = eng
	}
	return NewCoordinator(backends)
}

// Set returns the underlying sketch set (the partition's local set for a
// shard engine).
func (e *Engine) Set() SketchSet { return e.set }

// Meta identifies what the engine serves: its node range, partition
// position, sketch parameter, and set kind.  A whole-set engine reports
// the single partition of a 1-way split.
func (e *Engine) Meta() ShardMeta { return e.meta }

// checkNodes validates queried nodes against the global node space and,
// for a shard engine, against the owned range.
func (e *Engine) checkNodes(nodes []int32) error {
	if err := query.CheckNodes(e.total, nodes); err != nil {
		return err
	}
	if local := e.set.NumNodes(); local != e.total || e.lo != 0 {
		hi := e.lo + int32(local)
		for _, v := range nodes {
			if v < e.lo || v >= hi {
				return fmt.Errorf("node %d not owned by shard %d/%d (nodes [%d, %d))",
					v, e.meta.Index, e.meta.Count, e.lo, hi)
			}
		}
	}
	return nil
}

// Index returns node v's cached HIP query index, building it on first
// use.  The index is immutable and safe to share.  v is a global node
// ID; a shard engine serves only the nodes it owns.
func (e *Engine) Index(v int32) (*HIPIndex, error) {
	if err := e.checkNodes([]int32{v}); err != nil {
		return nil, err
	}
	return e.cache.Get(v - e.lo), nil
}

// CachedIndices returns how many per-node indices have been built so far.
func (e *Engine) CachedIndices() int { return e.cache.Cached() }

// CacheStats is a point-in-time snapshot of the Engine's index-cache
// counters, shaped for JSON serving.
type CacheStats = query.CacheStats

// CacheStats snapshots the index-cache counters (shards, built indices,
// hits, misses) — the payload of the adsserver /statsz endpoint.
func (e *Engine) CacheStats() CacheStats { return e.cache.Stats() }

// batch evaluates f on the cached index of every queried node with the
// engine's worker pool.  On error (including context cancellation) the
// partial results are discarded.
func (e *Engine) batch(ctx context.Context, nodes []int32, f func(*core.HIPIndex) float64) ([]float64, error) {
	if err := e.checkNodes(nodes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	out := make([]float64, len(nodes))
	err := query.ForEach(ctx, e.workers, len(nodes), func(i int) error {
		out[i] = f(e.cache.Get(nodes[i] - e.lo))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Closeness returns the HIP estimate of the classic closeness centrality
// 1/Σ_j d_vj for each queried node (0 for isolated nodes).
func (e *Engine) Closeness(ctx context.Context, nodes ...int32) ([]float64, error) {
	resp, err := e.Do(ctx, Request{Closeness: &ClosenessQuery{Nodes: nodes}})
	if err != nil {
		return nil, err
	}
	return resp.Scores, nil
}

// Harmonic returns the HIP estimate of Σ_{j != v} 1/d_vj for each queried
// node.
func (e *Engine) Harmonic(ctx context.Context, nodes ...int32) ([]float64, error) {
	resp, err := e.Do(ctx, Request{Harmonic: &HarmonicQuery{Nodes: nodes}})
	if err != nil {
		return nil, err
	}
	return resp.Scores, nil
}

// NeighborhoodSizes returns the HIP estimate of n_d(v) = |N_d(v)| (or the
// weighted cardinality, for weighted sets) for each queried node.  An
// infinite d counts everything reachable.
func (e *Engine) NeighborhoodSizes(ctx context.Context, d float64, nodes ...int32) ([]float64, error) {
	q := &NeighborhoodQuery{Radius: d, Nodes: nodes}
	if math.IsInf(d, 1) {
		q.Radius, q.Unbounded = 0, true
	}
	resp, err := e.Do(ctx, Request{Neighborhood: q})
	if err != nil {
		return nil, err
	}
	return resp.Scores, nil
}

// EstimateQBatch returns the HIP estimate of Q_g(v) = Σ_j g(j, d_vj)
// (equation (5) of the paper) for each queried node.  g must be safe for
// concurrent invocation.  An arbitrary Go function cannot cross a wire,
// so this is the one batch query outside the Request/Response protocol;
// the protocol's named kernels are served by CentralityKernelQuery.
func (e *Engine) EstimateQBatch(ctx context.Context, g func(node int32, dist float64) float64, nodes ...int32) ([]float64, error) {
	return e.batch(ctx, nodes, func(x *core.HIPIndex) float64 { return x.EstimateQ(g) })
}

// TopCloseness returns the estimated top-n nodes by closeness centrality,
// highest first (ties broken by node ID), scoring every node of the set
// with the worker pool.  A shard engine ranks only the nodes it owns.
func (e *Engine) TopCloseness(ctx context.Context, n int) ([]Ranked, error) {
	return e.top(ctx, MetricCloseness, n)
}

// TopHarmonic returns the estimated top-n nodes by harmonic centrality.
func (e *Engine) TopHarmonic(ctx context.Context, n int) ([]Ranked, error) {
	return e.top(ctx, MetricHarmonic, n)
}

func (e *Engine) top(ctx context.Context, metric string, n int) ([]Ranked, error) {
	// TopKQuery rejects K < 1 on the wire; the method keeps the looser
	// "empty ranking" semantics.  Overlong n is clamped by topBy.
	if n <= 0 || e.set.NumNodes() == 0 {
		return nil, nil
	}
	resp, err := e.Do(ctx, Request{TopK: &TopKQuery{Metric: metric, K: n}})
	if err != nil {
		return nil, err
	}
	return resp.Ranking, nil
}

// topBy scores every owned node with the worker pool, then selects the
// top n with a bounded min-heap — O(total·log n) selection instead of
// sorting the full score vector, which matters when serving top-10
// queries over millions of nodes.  Ranked nodes carry global IDs.
func (e *Engine) topBy(ctx context.Context, n int, score func(*core.HIPIndex) float64) ([]Ranked, error) {
	local := e.set.NumNodes()
	if n > local {
		n = local
	}
	scores := make([]float64, local)
	err := query.ForEach(ctx, e.workers, local, func(i int) error {
		scores[i] = score(e.cache.Get(int32(i)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	top := query.TopK(n, scores)
	out := make([]Ranked, len(top))
	for i, v := range top {
		out[i] = Ranked{Node: e.lo + int32(v), Score: scores[v]}
	}
	return out, nil
}

// kindOf names a sketch set's kind for serving metadata.
func kindOf(set SketchSet) string {
	switch set.(type) {
	case *WeightedSet:
		return KindWeighted
	case *ApproxSet:
		return KindApproximate
	default:
		return KindUniform
	}
}

// flavorOf names a sketch set's MinHash flavor for serving metadata.
// Weighted and approximate sets are bottom-k by construction.
func flavorOf(set SketchSet) string {
	if s, ok := set.(*Set); ok {
		switch s.Options().Flavor {
		case BottomK:
			return FlavorBottomK
		case KMins:
			return FlavorKMins
		case KPartition:
			return FlavorKPartition
		}
	}
	return FlavorBottomK
}
