package adsketch

import (
	"context"
	"fmt"
	"math"

	"adsketch/internal/core"
	"adsketch/internal/query"
)

// Engine answers batch, context-aware queries over a sketch set.  It is
// the serving layer for heavy query traffic: each node's HIP query index
// (HIPIndex) is built lazily on first touch and cached, so repeated
// queries against a node cost one binary search (neighborhood sizes) or
// O(1) (closeness, harmonic) instead of re-deriving the sketch's adjusted
// weights; batches are evaluated by a worker pool and honor context
// cancellation.  The cache is sharded (WithShards) so concurrent batches
// do not contend on one structure.
//
// Engine.Do / Engine.DoBatch dispatch the typed wire protocol (Request /
// Response); the named methods below are thin wrappers over the same
// dispatch, so a query served over a transport is bit-for-bit identical
// to the direct method call.  An Engine is safe for concurrent use by
// multiple goroutines, and its estimates equal the per-call estimators
// (Centrality, EstimateNeighborhoodHIP, EstimateQ) on the same sketches.
type Engine struct {
	set     SketchSet
	workers int
	shards  int
	cache   *query.IndexCache
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine) error

// WithQueryParallelism bounds the number of worker goroutines evaluating
// one batch query.  0 (the default) means GOMAXPROCS.
func WithQueryParallelism(workers int) EngineOption {
	return func(e *Engine) error {
		if workers < 0 {
			return fmt.Errorf("%w: WithQueryParallelism(%d), workers must be >= 0 (0 = GOMAXPROCS)", ErrBadOption, workers)
		}
		e.workers = workers
		return nil
	}
}

// WithShards sets the number of index-cache shards.  Concurrent batch
// queries touch per-shard slot arrays and counters, so more shards mean
// less contention; the default (0) sizes the shard count to GOMAXPROCS.
func WithShards(n int) EngineOption {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("%w: WithShards(%d), shards must be >= 0 (0 = auto)", ErrBadOption, n)
		}
		e.shards = n
		return nil
	}
}

// NewEngine wraps a sketch set (of any kind: uniform, weighted, or
// approximate) for batch serving.
func NewEngine(set SketchSet, opts ...EngineOption) (*Engine, error) {
	e := &Engine{set: set}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("%w: nil EngineOption", ErrBadOption)
		}
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	e.cache = query.NewIndexCache(set.NumNodes(), e.shards, func(v int32) *core.HIPIndex {
		return core.NewHIPIndex(set.SketchOf(v))
	})
	return e, nil
}

// Set returns the underlying sketch set.
func (e *Engine) Set() SketchSet { return e.set }

// Index returns node v's cached HIP query index, building it on first
// use.  The index is immutable and safe to share.
func (e *Engine) Index(v int32) (*HIPIndex, error) {
	if err := query.CheckNodes(e.set.NumNodes(), []int32{v}); err != nil {
		return nil, err
	}
	return e.cache.Get(v), nil
}

// CachedIndices returns how many per-node indices have been built so far.
func (e *Engine) CachedIndices() int { return e.cache.Cached() }

// CacheStats is a point-in-time snapshot of the Engine's index-cache
// counters, shaped for JSON serving.
type CacheStats = query.CacheStats

// CacheStats snapshots the index-cache counters (shards, built indices,
// hits, misses) — the payload of the adsserver /statsz endpoint.
func (e *Engine) CacheStats() CacheStats { return e.cache.Stats() }

// batch evaluates f on the cached index of every queried node with the
// engine's worker pool.  On error (including context cancellation) the
// partial results are discarded.
func (e *Engine) batch(ctx context.Context, nodes []int32, f func(*core.HIPIndex) float64) ([]float64, error) {
	if err := query.CheckNodes(e.set.NumNodes(), nodes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	out := make([]float64, len(nodes))
	err := query.ForEach(ctx, e.workers, len(nodes), func(i int) error {
		out[i] = f(e.cache.Get(nodes[i]))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Closeness returns the HIP estimate of the classic closeness centrality
// 1/Σ_j d_vj for each queried node (0 for isolated nodes).
func (e *Engine) Closeness(ctx context.Context, nodes ...int32) ([]float64, error) {
	resp, err := e.Do(ctx, Request{Closeness: &ClosenessQuery{Nodes: nodes}})
	if err != nil {
		return nil, err
	}
	return resp.Scores, nil
}

// Harmonic returns the HIP estimate of Σ_{j != v} 1/d_vj for each queried
// node.
func (e *Engine) Harmonic(ctx context.Context, nodes ...int32) ([]float64, error) {
	resp, err := e.Do(ctx, Request{Harmonic: &HarmonicQuery{Nodes: nodes}})
	if err != nil {
		return nil, err
	}
	return resp.Scores, nil
}

// NeighborhoodSizes returns the HIP estimate of n_d(v) = |N_d(v)| (or the
// weighted cardinality, for weighted sets) for each queried node.  An
// infinite d counts everything reachable.
func (e *Engine) NeighborhoodSizes(ctx context.Context, d float64, nodes ...int32) ([]float64, error) {
	q := &NeighborhoodQuery{Radius: d, Nodes: nodes}
	if math.IsInf(d, 1) {
		q.Radius, q.Unbounded = 0, true
	}
	resp, err := e.Do(ctx, Request{Neighborhood: q})
	if err != nil {
		return nil, err
	}
	return resp.Scores, nil
}

// EstimateQBatch returns the HIP estimate of Q_g(v) = Σ_j g(j, d_vj)
// (equation (5) of the paper) for each queried node.  g must be safe for
// concurrent invocation.  An arbitrary Go function cannot cross a wire,
// so this is the one batch query outside the Request/Response protocol;
// the protocol's named kernels are served by CentralityKernelQuery.
func (e *Engine) EstimateQBatch(ctx context.Context, g func(node int32, dist float64) float64, nodes ...int32) ([]float64, error) {
	return e.batch(ctx, nodes, func(x *core.HIPIndex) float64 { return x.EstimateQ(g) })
}

// TopCloseness returns the estimated top-n nodes by closeness centrality,
// highest first (ties broken by node ID), scoring every node of the set
// with the worker pool.
func (e *Engine) TopCloseness(ctx context.Context, n int) ([]Ranked, error) {
	return e.top(ctx, MetricCloseness, n)
}

// TopHarmonic returns the estimated top-n nodes by harmonic centrality.
func (e *Engine) TopHarmonic(ctx context.Context, n int) ([]Ranked, error) {
	return e.top(ctx, MetricHarmonic, n)
}

func (e *Engine) top(ctx context.Context, metric string, n int) ([]Ranked, error) {
	// TopKQuery rejects K < 1 on the wire; the method keeps the looser
	// "empty ranking" semantics.  Overlong n is clamped by topBy.
	if n <= 0 || e.set.NumNodes() == 0 {
		return nil, nil
	}
	resp, err := e.Do(ctx, Request{TopK: &TopKQuery{Metric: metric, K: n}})
	if err != nil {
		return nil, err
	}
	return resp.Ranking, nil
}

// topBy scores every node with the worker pool, then selects the top n
// with a bounded min-heap — O(total·log n) selection instead of sorting
// the full score vector, which matters when serving top-10 queries over
// millions of nodes.
func (e *Engine) topBy(ctx context.Context, n int, score func(*core.HIPIndex) float64) ([]Ranked, error) {
	total := e.set.NumNodes()
	if n > total {
		n = total
	}
	scores := make([]float64, total)
	err := query.ForEach(ctx, e.workers, total, func(i int) error {
		scores[i] = score(e.cache.Get(int32(i)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	top := query.TopK(n, scores)
	out := make([]Ranked, len(top))
	for i, v := range top {
		out[i] = Ranked{Node: int32(v), Score: scores[v]}
	}
	return out, nil
}
