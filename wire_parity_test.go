package adsketch_test

// Cross-protocol parity: the binary wire codec must be a transparent
// transport.  Every query kind under every failure policy has to decode
// to the exact Response the JSON transport produces — against a solo
// engine, through a coordinator, and through the coordinator's batched
// fan-out, including when shards are failing.

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"adsketch"
	"adsketch/internal/wire"
)

// doer is the query surface both Engine and Coordinator expose.
type doer interface {
	Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error)
}

// viaJSON runs one request through a JSON round trip on both legs, the
// way an HTTP client and server marshal it.
func viaJSON(t *testing.T, ctx context.Context, d doer, req adsketch.Request) (adsketch.Response, error) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var decoded adsketch.Request
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	resp, err := d.Do(ctx, decoded)
	if err != nil {
		return adsketch.Response{}, err
	}
	out, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var final adsketch.Response
	if err := json.Unmarshal(out, &final); err != nil {
		t.Fatal(err)
	}
	return final, nil
}

// viaWire runs the same request through binary frames on both legs.
func viaWire(t *testing.T, ctx context.Context, d doer, req adsketch.Request) (adsketch.Response, error) {
	t.Helper()
	buf := wire.Get()
	defer buf.Free()
	wire.EncodeRequest(buf, &req)
	decoded, err := wire.DecodeRequest(buf.B)
	if err != nil {
		t.Fatalf("decoding request frame: %v", err)
	}
	resp, err := d.Do(ctx, decoded)
	if err != nil {
		return adsketch.Response{}, err
	}
	wire.EncodeResponse(buf, &resp)
	final, err := wire.DecodeResponse(buf.B)
	if err != nil {
		t.Fatalf("decoding response frame: %v", err)
	}
	return final, nil
}

// wireParityCorpus is parityRequests plus Explain variants, which carry
// the merge metadata the binary response frame must also preserve.
func wireParityCorpus() []adsketch.Request {
	reqs := parityRequests()
	reqs = append(reqs,
		adsketch.Request{ID: "clx", Explain: true, Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 250, 399}}},
		adsketch.Request{ID: "tkx", Explain: true, TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 5}},
	)
	return reqs
}

// The acceptance criterion: every query kind under every policy decodes
// byte-identically over JSON and binary, solo and coordinated.
func TestWireTransportParityAllKinds(t *testing.T) {
	eng, coord := buildCluster(t)
	ctx := context.Background()
	backends := []struct {
		name string
		d    doer
	}{{"engine", eng}, {"coordinator", coord}}
	for _, req := range wireParityCorpus() {
		for _, policy := range []string{"", "fail", "partial"} {
			req := req
			req.Policy = policy
			name := req.ID
			if policy != "" {
				name += "/" + policy
			}
			t.Run(name, func(t *testing.T) {
				for _, be := range backends {
					want, jsonErr := viaJSON(t, ctx, be.d, req)
					got, wireErr := viaWire(t, ctx, be.d, req)
					if (jsonErr == nil) != (wireErr == nil) {
						t.Fatalf("%s: transport changed the outcome: json err %v, wire err %v", be.name, jsonErr, wireErr)
					}
					if jsonErr != nil {
						if jsonErr.Error() != wireErr.Error() {
							t.Fatalf("%s: error text differs:\n  json %v\n  wire %v", be.name, jsonErr, wireErr)
						}
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: decoded responses differ:\n  json %+v\n  wire %+v", be.name, want, got)
					}
					wantJSON, _ := json.Marshal(want)
					gotJSON, _ := json.Marshal(got)
					if string(wantJSON) != string(gotJSON) {
						t.Errorf("%s: re-marshaled responses differ:\n  json %s\n  wire %s", be.name, wantJSON, gotJSON)
					}
				}
			})
		}
	}
}

// Malformed requests must fail identically over both transports: the
// codec may not mask or alter a validation error.
func TestWireTransportErrorParity(t *testing.T) {
	eng, coord := buildCluster(t)
	ctx := context.Background()
	bad := []adsketch.Request{
		{ID: "none"}, // no query set
		{ID: "two", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{1}}, Sketch: &adsketch.SketchQuery{Node: 1}},
		{ID: "oob", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{-1}}},
		{ID: "pol", Policy: "bogus", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{1}}},
		{ID: "rad", Neighborhood: &adsketch.NeighborhoodQuery{Radius: -2, Nodes: []int32{1}}},
	}
	for _, req := range bad {
		for _, d := range []doer{eng, coord} {
			_, jsonErr := viaJSON(t, ctx, d, req)
			_, wireErr := viaWire(t, ctx, d, req)
			if jsonErr == nil || wireErr == nil {
				t.Fatalf("%s: expected errors, got json %v, wire %v", req.ID, jsonErr, wireErr)
			}
			if jsonErr.Error() != wireErr.Error() {
				t.Errorf("%s: error text differs:\n  json %v\n  wire %v", req.ID, jsonErr, wireErr)
			}
		}
	}
}

// The batched frame path: a whole corpus in one multi-request frame
// through DoBatch must decode identically to the JSON batch.
func TestWireBatchTransportParity(t *testing.T) {
	_, coord := buildCluster(t)
	ctx := context.Background()
	reqs := wireParityCorpus()
	for i := range reqs {
		reqs[i].Policy = []string{"", "fail", "partial"}[i%3]
	}
	reqs = append(reqs, adsketch.Request{ID: "bad", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{-7}}})

	// JSON leg.
	body, err := json.Marshal(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var jsonReqs []adsketch.Request
	if err := json.Unmarshal(body, &jsonReqs); err != nil {
		t.Fatal(err)
	}
	want, err := coord.DoBatch(ctx, jsonReqs)
	if err != nil {
		t.Fatal(err)
	}
	wantBody, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var wantResps []adsketch.Response
	if err := json.Unmarshal(wantBody, &wantResps); err != nil {
		t.Fatal(err)
	}

	// Binary leg.
	buf := wire.Get()
	defer buf.Free()
	wire.EncodeRequests(buf, reqs)
	wireReqs, batch, err := wire.DecodeRequests(buf.B)
	if err != nil {
		t.Fatal(err)
	}
	if !batch {
		t.Fatal("multi-request frame decoded without the batch flag")
	}
	got, err := coord.DoBatch(ctx, wireReqs)
	if err != nil {
		t.Fatal(err)
	}
	wire.EncodeResponses(buf, got)
	gotResps, _, err := wire.DecodeResponses(buf.B)
	if err != nil {
		t.Fatal(err)
	}

	if len(gotResps) != len(wantResps) {
		t.Fatalf("%d responses, want %d", len(gotResps), len(wantResps))
	}
	for i := range wantResps {
		wantJSON, _ := json.Marshal(wantResps[i])
		gotJSON, _ := json.Marshal(gotResps[i])
		if string(wantJSON) != string(gotJSON) {
			t.Errorf("request %s: batched responses differ:\n  json %s\n  wire %s", reqs[i].ID, wantJSON, gotJSON)
		}
	}
}

// The batched scatter must degrade exactly like the per-request path: a
// dead shard produces the same per-slot errors and the same partial
// responses DoBatch-of-Do would.
func TestBatchedScatterFailureParity(t *testing.T) {
	_, set, _ := buildEngine(t)
	wrapped, faults := wrapFaulty(shardEngines(t, set, 4))
	coord, err := adsketch.NewCoordinator(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	faults[1].kill()

	var reqs []adsketch.Request
	for _, base := range parityRequests() {
		for _, policy := range []string{"fail", "partial"} {
			r := base
			r.ID = base.ID + "-" + policy
			r.Policy = policy
			reqs = append(reqs, r)
		}
	}
	reqs = append(reqs, adsketch.Request{ID: "bad", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{99999}}})

	ctx := context.Background()
	want := make([]adsketch.Response, len(reqs))
	for i, r := range reqs {
		resp, err := coord.Do(ctx, r)
		if err != nil {
			want[i] = adsketch.Response{ID: r.ID, Error: err.Error()}
			continue
		}
		want[i] = resp
	}
	got, err := coord.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d responses, want %d", len(got), len(want))
	}
	for i := range want {
		wantJSON, _ := json.Marshal(want[i])
		gotJSON, _ := json.Marshal(got[i])
		if string(wantJSON) != string(gotJSON) {
			t.Errorf("request %s: batched scatter differs from per-request path:\n  batched %s\n  single  %s",
				reqs[i].ID, gotJSON, wantJSON)
		}
	}
}
