package adsketch_test

// Catalog serving-path benchmarks, part of the BENCH_engine.json
// trajectory: BenchmarkCatalogDo against BenchmarkCatalogDoDirect
// measures the routing overhead of the dataset layer (pin a ref-counted
// version, dispatch, unpin) over a bare Engine.Do — measured at
// ~1.6µs vs ~1.4µs per warm closeness request (≈200ns routing, same
// 8 allocs), so earlier single-iteration readings of 11.8µs vs 4.4µs
// were first-request warmup artifacts, not steady-state routing cost;
// pin these with a multi-iteration run (see the Makefile bench target).
// BenchmarkCatalogDoBatch covers the DoBatch single-dataset fast path
// (the pin lives in locals; no per-batch map), and BenchmarkCatalogSwap
// prices a hot swap (build + publish + retire of an Engine over a
// prebuilt set).

import (
	"context"
	"sync"
	"testing"

	"adsketch"
)

var benchCatalogOnce struct {
	sync.Once
	setA, setB adsketch.SketchSet
	eng        *adsketch.Engine
	cat        *adsketch.Catalog
}

func benchCatalog(b *testing.B) (*adsketch.Catalog, *adsketch.Engine) {
	b.Helper()
	benchCatalogOnce.Do(func() {
		g := adsketch.PreferentialAttachment(5000, 4, 3)
		var err error
		if benchCatalogOnce.setA, err = adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(7)); err != nil {
			b.Fatal(err)
		}
		if benchCatalogOnce.setB, err = adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(8)); err != nil {
			b.Fatal(err)
		}
		if benchCatalogOnce.eng, err = adsketch.NewEngine(benchCatalogOnce.setA); err != nil {
			b.Fatal(err)
		}
		if benchCatalogOnce.cat, err = adsketch.NewCatalog(); err != nil {
			b.Fatal(err)
		}
		if err = benchCatalogOnce.cat.Attach(adsketch.DefaultDataset, adsketch.SetSource(benchCatalogOnce.setA)); err != nil {
			b.Fatal(err)
		}
	})
	return benchCatalogOnce.cat, benchCatalogOnce.eng
}

// BenchmarkCatalogDo: one warm-cache closeness request routed through
// the catalog (resolve name, pin version, Engine.Do, release).
func BenchmarkCatalogDo(b *testing.B) {
	cat, _ := benchCatalog(b)
	ctx := context.Background()
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{17}}}
	if _, err := cat.Do(ctx, req); err != nil { // warm the index cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogDoDirect: the same request on the bare Engine — the
// baseline the catalog's routing overhead is measured against.
func BenchmarkCatalogDoDirect(b *testing.B) {
	_, eng := benchCatalog(b)
	ctx := context.Background()
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{17}}}
	if _, err := eng.Do(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogDoBatch: an 8-request single-dataset batch through
// DoBatch — the common serving shape, answered from one pinned version
// via the local fast path (no per-batch pin map).
func BenchmarkCatalogDoBatch(b *testing.B) {
	cat, _ := benchCatalog(b)
	ctx := context.Background()
	reqs := make([]adsketch.Request, 8)
	for i := range reqs {
		reqs[i] = adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{int32(i)}}}
	}
	if _, err := cat.DoBatch(ctx, reqs); err != nil { // warm the index cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.DoBatch(ctx, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogSwap: atomically publishing a new version over a
// prebuilt set (Engine construction + publish + retire of the idle old
// version) — the steady-state cost of a rebuild pipeline pushing
// refreshed sketches into a serving process.
func BenchmarkCatalogSwap(b *testing.B) {
	cat, _ := benchCatalog(b)
	sources := []adsketch.Source{
		adsketch.SetSource(benchCatalogOnce.setB),
		adsketch.SetSource(benchCatalogOnce.setA),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Swap(adsketch.DefaultDataset, sources[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}
