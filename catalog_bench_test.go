package adsketch_test

// Catalog serving-path benchmarks, part of the BENCH_engine.json
// trajectory: BenchmarkCatalogDo against BenchmarkCatalogDoDirect
// measures the routing overhead of the dataset layer (pin a ref-counted
// version, dispatch, unpin) over a bare Engine.Do — a constant ~100ns
// and 0 extra allocations per request, i.e. ~5% of the cheapest warm
// single-node query and noise for batches, which pay it once per
// request — and BenchmarkCatalogSwap prices a hot swap (build + publish
// + retire of an Engine over a prebuilt set).

import (
	"context"
	"sync"
	"testing"

	"adsketch"
)

var benchCatalogOnce struct {
	sync.Once
	setA, setB adsketch.SketchSet
	eng        *adsketch.Engine
	cat        *adsketch.Catalog
}

func benchCatalog(b *testing.B) (*adsketch.Catalog, *adsketch.Engine) {
	b.Helper()
	benchCatalogOnce.Do(func() {
		g := adsketch.PreferentialAttachment(5000, 4, 3)
		var err error
		if benchCatalogOnce.setA, err = adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(7)); err != nil {
			b.Fatal(err)
		}
		if benchCatalogOnce.setB, err = adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(8)); err != nil {
			b.Fatal(err)
		}
		if benchCatalogOnce.eng, err = adsketch.NewEngine(benchCatalogOnce.setA); err != nil {
			b.Fatal(err)
		}
		if benchCatalogOnce.cat, err = adsketch.NewCatalog(); err != nil {
			b.Fatal(err)
		}
		if err = benchCatalogOnce.cat.Attach(adsketch.DefaultDataset, adsketch.SetSource(benchCatalogOnce.setA)); err != nil {
			b.Fatal(err)
		}
	})
	return benchCatalogOnce.cat, benchCatalogOnce.eng
}

// BenchmarkCatalogDo: one warm-cache closeness request routed through
// the catalog (resolve name, pin version, Engine.Do, release).
func BenchmarkCatalogDo(b *testing.B) {
	cat, _ := benchCatalog(b)
	ctx := context.Background()
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{17}}}
	if _, err := cat.Do(ctx, req); err != nil { // warm the index cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogDoDirect: the same request on the bare Engine — the
// baseline the catalog's routing overhead is measured against.
func BenchmarkCatalogDoDirect(b *testing.B) {
	_, eng := benchCatalog(b)
	ctx := context.Background()
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{17}}}
	if _, err := eng.Do(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogSwap: atomically publishing a new version over a
// prebuilt set (Engine construction + publish + retire of the idle old
// version) — the steady-state cost of a rebuild pipeline pushing
// refreshed sketches into a serving process.
func BenchmarkCatalogSwap(b *testing.B) {
	cat, _ := benchCatalog(b)
	sources := []adsketch.Source{
		adsketch.SetSource(benchCatalogOnce.setB),
		adsketch.SetSource(benchCatalogOnce.setA),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Swap(adsketch.DefaultDataset, sources[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}
