package adsketch_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"adsketch"
)

// buildSet builds a deterministic small uniform set; different seeds
// yield different estimates for the same nodes, which the swap tests use
// to tell versions apart.
func buildSet(t testing.TB, seed uint64) adsketch.SketchSet {
	t.Helper()
	g := adsketch.PreferentialAttachment(400, 3, 6)
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// writeV3 persists a set as a columnar v3 file under dir.
func writeV3(t testing.TB, dir, name string, set adsketch.SketchSet) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adsketch.WriteSketchSetV3(f, set); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// An empty Dataset field must keep the wire format bit-for-bit what it
// was before the catalog existed.
func TestRequestDatasetWireCompat(t *testing.T) {
	req := adsketch.Request{ID: "q1", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{1, 2}}}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"id":"q1","closeness":{"nodes":[1,2]}}`
	if string(payload) != want {
		t.Fatalf("empty-Dataset request marshals as %s, want %s", payload, want)
	}
	req.Dataset = "daily"
	payload, err = json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	want = `{"id":"q1","dataset":"daily","closeness":{"nodes":[1,2]}}`
	if string(payload) != want {
		t.Fatalf("named-dataset request marshals as %s, want %s", payload, want)
	}
}

// A dataset-routed query must be byte-identical to the same query on a
// standalone Engine over the same sketches.
func TestCatalogRoutingParity(t *testing.T) {
	set := buildSet(t, 42)
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if err := cat.Attach("graphs-2026-07", adsketch.SetSource(set)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Attach(adsketch.DefaultDataset, adsketch.SetSource(set)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reqs := []adsketch.Request{
		{ID: "cl", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 17, 399}}},
		{ID: "nh", Neighborhood: &adsketch.NeighborhoodQuery{Radius: 2.5, Nodes: []int32{3, 7}}},
		{ID: "tk", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricHarmonic, K: 5}},
		{ID: "jc", Jaccard: &adsketch.JaccardQuery{A: 1, RadiusA: 3, B: 2, RadiusB: 3}},
	}
	for _, base := range reqs {
		want, err := eng.Do(ctx, base)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"", "graphs-2026-07", adsketch.DefaultDataset} {
			req := base
			req.Dataset = name
			got, err := cat.Do(ctx, req)
			if err != nil {
				t.Fatalf("dataset %q: %v", name, err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("dataset %q, req %s: catalog answer %s, engine answer %s", name, base.ID, gotJSON, wantJSON)
			}
		}
	}
}

func TestCatalogLifecycleErrors(t *testing.T) {
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	set := buildSet(t, 42)
	if err := cat.Attach("a", adsketch.SetSource(set)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Attach("a", adsketch.SetSource(set)); !errors.Is(err, adsketch.ErrDatasetExists) {
		t.Errorf("double attach: %v, want ErrDatasetExists", err)
	}
	if err := cat.Attach("bad/name", adsketch.SetSource(set)); !errors.Is(err, adsketch.ErrBadOption) {
		t.Errorf("bad name: %v, want ErrBadOption", err)
	}
	if err := cat.Attach("", adsketch.SetSource(set)); !errors.Is(err, adsketch.ErrBadOption) {
		t.Errorf("empty name: %v, want ErrBadOption", err)
	}
	if err := cat.Attach("nilset", adsketch.SetSource(nil)); !errors.Is(err, adsketch.ErrBadOption) {
		t.Errorf("nil set: %v, want ErrBadOption", err)
	}
	if err := cat.Attach("noz", adsketch.Source{}); !errors.Is(err, adsketch.ErrBadOption) {
		t.Errorf("zero source: %v, want ErrBadOption", err)
	}
	if _, err := cat.Do(context.Background(), adsketch.Request{
		Dataset:   "missing",
		Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}},
	}); !errors.Is(err, adsketch.ErrUnknownDataset) {
		t.Errorf("unknown dataset Do: %v, want ErrUnknownDataset", err)
	}
	// No default attached: the empty name resolves to "default" and fails.
	if _, err := cat.Do(context.Background(), adsketch.Request{
		Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}},
	}); !errors.Is(err, adsketch.ErrUnknownDataset) {
		t.Errorf("missing default Do: %v, want ErrUnknownDataset", err)
	}
	if err := cat.Detach("missing"); !errors.Is(err, adsketch.ErrUnknownDataset) {
		t.Errorf("unknown detach: %v, want ErrUnknownDataset", err)
	}
	if err := cat.Detach("a"); err != nil {
		t.Fatal(err)
	}
	// Failed attaches leave nothing behind; after detaching "a" the
	// catalog must be empty.
	if got := cat.Datasets(); len(got) != 0 {
		t.Errorf("Datasets() = %v, want []", got)
	}
}

// WithDefaultDataset reroutes the empty dataset name.
func TestCatalogDefaultDataset(t *testing.T) {
	set := buildSet(t, 42)
	cat, err := adsketch.NewCatalog(adsketch.WithDefaultDataset("snapshot-a"))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if err := cat.Attach("snapshot-a", adsketch.SetSource(set)); err != nil {
		t.Fatal(err)
	}
	resp, err := cat.Do(context.Background(), adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{5}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Scores) != 1 {
		t.Fatalf("response: %+v", resp)
	}
	if st := cat.Stats(); st.Default != "snapshot-a" {
		t.Errorf("Stats().Default = %q", st.Default)
	}
}

// Swap publishes atomically: a pinned handle keeps answering from the
// old version, new queries see the new version immediately, and stats
// report the drain until the pin drops.
func TestCatalogSwapPinnedDrain(t *testing.T) {
	setA, setB := buildSet(t, 42), buildSet(t, 1042)
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if err := cat.Attach("d", adsketch.SetSource(setA)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := adsketch.Request{Dataset: "d", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 7}}}
	engA, _ := adsketch.NewEngine(setA)
	engB, _ := adsketch.NewEngine(setB)
	wantA, err := engA.Closeness(ctx, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := engB.Closeness(ctx, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if wantA[0] == wantB[0] {
		t.Fatal("test sets indistinguishable; pick different seeds")
	}

	pinned, err := cat.Acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Version() != 1 {
		t.Fatalf("pinned version %d, want 1", pinned.Version())
	}
	v, err := cat.Swap("d", adsketch.SetSource(setB))
	if err != nil || v != 2 {
		t.Fatalf("Swap = (%d, %v), want (2, nil)", v, err)
	}
	// New queries flip to version 2 at once.
	resp, err := cat.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scores[0] != wantB[0] || resp.Scores[1] != wantB[1] {
		t.Errorf("post-swap answer %v, want new-version %v", resp.Scores, wantB)
	}
	// The pinned handle still answers from version 1.
	old, err := pinned.Backend().Do(ctx, adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 7}}})
	if err != nil {
		t.Fatal(err)
	}
	if old.Scores[0] != wantA[0] {
		t.Errorf("pinned answer %v, want old-version %v", old.Scores, wantA)
	}
	st := statsOf(t, cat, "d")
	if st.Draining != 1 || st.Version != 2 {
		t.Errorf("stats during drain: %+v", st)
	}
	pinned.Release()
	if st := statsOf(t, cat, "d"); st.Draining != 0 {
		t.Errorf("stats after drain: %+v", st)
	}
}

func statsOf(t testing.TB, cat *adsketch.Catalog, name string) adsketch.DatasetStats {
	t.Helper()
	for _, ds := range cat.Stats().Datasets {
		if ds.Name == name {
			return ds
		}
	}
	t.Fatalf("dataset %q not in stats", name)
	return adsketch.DatasetStats{}
}

// Swap-under-load coherence: every batch overlapping concurrent swaps
// answers all its requests from one version — old or new, never a mix.
// Run with -race.
func TestCatalogSwapUnderLoadBatchCoherence(t *testing.T) {
	setA, setB := buildSet(t, 42), buildSet(t, 1042)
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if err := cat.Attach("d", adsketch.SetSource(setA)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	engA, _ := adsketch.NewEngine(setA)
	engB, _ := adsketch.NewEngine(setB)
	wantA, err := engA.Closeness(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := engB.Closeness(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wantA[0] == wantB[0] {
		t.Fatal("test sets indistinguishable; pick different seeds")
	}

	reqs := []adsketch.Request{
		{ID: "a", Dataset: "d", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{3}}},
		{ID: "b", Dataset: "d", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{3}}},
		{ID: "c", Dataset: "d", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{3}}},
	}
	var sawA, sawB atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resps, err := cat.DoBatch(ctx, reqs)
				if err != nil {
					t.Errorf("DoBatch: %v", err)
					return
				}
				for i, r := range resps {
					if r.Error != "" {
						t.Errorf("response %d failed: %s", i, r.Error)
						return
					}
					switch r.Scores[0] {
					case wantA[0]:
						sawA.Add(1)
					case wantB[0]:
						sawB.Add(1)
					default:
						t.Errorf("score %v matches neither version", r.Scores[0])
						return
					}
					if r.Scores[0] != resps[0].Scores[0] {
						t.Errorf("mixed versions within one batch: %v vs %v", r.Scores[0], resps[0].Scores[0])
						return
					}
				}
			}
		}()
	}
	sources := []adsketch.Source{adsketch.SetSource(setB), adsketch.SetSource(setA)}
	for i := 0; i < 40; i++ {
		if _, err := cat.Swap("d", sources[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if sawA.Load() == 0 || sawB.Load() == 0 {
		t.Logf("version coverage: old=%d new=%d (both>0 preferred; load/swap interleaving dependent)", sawA.Load(), sawB.Load())
	}
}

// Swapping an mmap'd dataset under load must never unmap pages a live
// query is reading (run with -race; a violation is a SIGSEGV or race
// report), and the retired file's mapping must be gone once drained.
func TestCatalogMmapSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	pathA := writeV3(t, dir, "a.ads", buildSet(t, 42))
	pathB := writeV3(t, dir, "b.ads", buildSet(t, 1042))
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if err := cat.Attach("d", adsketch.MmapSource(pathA)); err != nil {
		t.Fatal(err)
	}
	if st := statsOf(t, cat, "d"); !st.Mmap || st.FileVersion != adsketch.SketchFormatVersionColumnar {
		t.Fatalf("mmap attach stats: %+v", st)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cat.Do(ctx, adsketch.Request{
					Dataset:      "d",
					Neighborhood: &adsketch.NeighborhoodQuery{Radius: 3, Nodes: []int32{0, 50, 399}},
				})
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				for _, s := range resp.Scores {
					if s < 0 {
						t.Errorf("negative estimate %v", s)
					}
				}
			}
		}()
	}
	paths := []string{pathB, pathA}
	for i := 0; i < 20; i++ {
		if _, err := cat.Swap("d", adsketch.MmapSource(paths[i%2])); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if st := statsOf(t, cat, "d"); st.Draining != 0 || st.Version != 21 {
		t.Errorf("post-load stats: %+v", st)
	}
}

// The memory budget evicts idle file-backed datasets LRU-first and
// reloads them transparently on the next query.
func TestCatalogEvictionBudget(t *testing.T) {
	dir := t.TempDir()
	set := buildSet(t, 42)
	cost := int64(set.TotalEntries())*20 + int64(set.NumNodes()+1)*8
	paths := make([]string, 3)
	for i := range paths {
		paths[i] = writeV3(t, dir, fmt.Sprintf("d%d.ads", i), buildSet(t, uint64(42+100*i)))
	}
	// Room for two resident datasets, not three.
	cat, err := adsketch.NewCatalog(adsketch.WithMemoryBudget(2*cost + cost/2))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	for i, p := range paths {
		if err := cat.Attach(fmt.Sprintf("d%d", i), adsketch.FileSource(p)); err != nil {
			t.Fatal(err)
		}
	}
	st := cat.Stats()
	if st.BudgetBytes == 0 || st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("resident %d over budget %d", st.ResidentBytes, st.BudgetBytes)
	}
	resident := 0
	for _, ds := range st.Datasets {
		if !ds.Evictable {
			t.Errorf("file dataset %s not evictable: %+v", ds.Name, ds)
		}
		if ds.Resident {
			resident++
		}
	}
	if resident != 2 {
		t.Fatalf("%d resident datasets under budget, want 2: %+v", resident, st.Datasets)
	}
	if ds := statsOf(t, cat, "d0"); ds.Resident || ds.Evictions != 1 {
		t.Errorf("d0 (LRU) should be the evictee: %+v", ds)
	}
	// Querying the evicted dataset reloads it...
	resp, err := cat.Do(context.Background(), adsketch.Request{
		Dataset:   "d0",
		Closeness: &adsketch.ClosenessQuery{Nodes: []int32{1}},
	})
	if err != nil || resp.Error != "" {
		t.Fatalf("query against evicted dataset: %v %s", err, resp.Error)
	}
	// ...and once idle again the budget pushes out the new LRU (d1).
	if ds := statsOf(t, cat, "d0"); !ds.Resident {
		t.Errorf("d0 not resident after reload: %+v", ds)
	}
	if ds := statsOf(t, cat, "d1"); ds.Resident {
		t.Errorf("d1 should have been evicted after d0's reload: %+v", ds)
	}
	if st := cat.Stats(); st.ResidentBytes > st.BudgetBytes {
		t.Errorf("resident %d over budget %d after reload", st.ResidentBytes, st.BudgetBytes)
	}
	// In-memory datasets are not evictable, whatever the budget.
	if err := cat.Attach("mem", adsketch.SetSource(set)); err != nil {
		t.Fatal(err)
	}
	if ds := statsOf(t, cat, "mem"); ds.Evictable || !ds.Resident {
		t.Errorf("in-memory dataset: %+v", ds)
	}
}

// A partitioned source serves scatter-gather answers identical to the
// unsplit set, as one catalog entry.
func TestCatalogPartitionedSource(t *testing.T) {
	set := buildSet(t, 42)
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if err := cat.Attach("sharded", adsketch.SetSource(set).WithPartitions(4)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := adsketch.Request{TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 7}}
	want, err := eng.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	req.Dataset = "sharded"
	got, err := cat.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Ranking {
		if got.Ranking[i] != want.Ranking[i] {
			t.Errorf("ranking[%d] = %+v, want %+v", i, got.Ranking[i], want.Ranking[i])
		}
	}
	// A Coordinator can also be attached directly as a backend.
	coord, err := adsketch.NewPartitionedEngine(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Attach("coord", adsketch.BackendSource(coord)); err != nil {
		t.Fatal(err)
	}
	req.Dataset = "coord"
	got2, err := cat.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Ranking[0] != want.Ranking[0] {
		t.Errorf("coordinator entry ranking[0] = %+v, want %+v", got2.Ranking[0], want.Ranking[0])
	}
}

// DoBatch reports unknown datasets per request without failing the batch
// and routes the rest.
func TestCatalogDoBatchMixedDatasets(t *testing.T) {
	setA, setB := buildSet(t, 42), buildSet(t, 1042)
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if err := cat.Attach(adsketch.DefaultDataset, adsketch.SetSource(setA)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Attach("b", adsketch.SetSource(setB)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	engA, _ := adsketch.NewEngine(setA)
	engB, _ := adsketch.NewEngine(setB)
	wantA, _ := engA.Closeness(ctx, 3)
	wantB, _ := engB.Closeness(ctx, 3)
	resps, err := cat.DoBatch(ctx, []adsketch.Request{
		{ID: "1", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{3}}},
		{ID: "2", Dataset: "b", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{3}}},
		{ID: "3", Dataset: "ghost", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Scores[0] != wantA[0] {
		t.Errorf("default-dataset score %v, want %v", resps[0].Scores[0], wantA[0])
	}
	if resps[1].Scores[0] != wantB[0] {
		t.Errorf("dataset b score %v, want %v", resps[1].Scores[0], wantB[0])
	}
	if resps[2].Error == "" || resps[2].ID != "3" {
		t.Errorf("unknown dataset in batch: %+v", resps[2])
	}
}
