package adsketch

import (
	"context"
	"errors"
	"fmt"

	"adsketch/internal/catalog"
)

// The dataset-management layer.  An Engine (or Coordinator) serves one
// sketch set for the process lifetime; a production deployment serves
// fleets of them — one per graph snapshot, per day, per k, per flavor —
// and rebuilds them while traffic is live.  Catalog is the registry in
// front of those backends: named datasets, each with a version counter,
// resolved per query by Request.Dataset (empty = the default dataset,
// preserving the single-set wire protocol bit-for-bit).
//
// The lifecycle is attach / swap / detach.  Swap atomically publishes a
// new version: queries that began on the old version finish on it
// (handles are reference-counted), new queries see the new one, and the
// old version's resources — including an mmap'd SketchFile's pages —
// are released only when its last in-flight reader is done.  An
// optional memory budget evicts idle file-backed (non-mmap) datasets in
// LRU order; they reload transparently on their next query.

// DefaultDataset is the catalog name that queries with an empty
// Request.Dataset field route to.
const DefaultDataset = "default"

// Typed sentinel errors of the catalog layer; match with errors.Is.
var (
	// ErrUnknownDataset reports a query or lifecycle operation naming a
	// dataset the catalog does not hold.  Servers should map it to HTTP
	// 404.
	ErrUnknownDataset = errors.New("adsketch: unknown dataset")
	// ErrDatasetExists reports an Attach of a name that is already
	// attached (use Swap to replace a dataset).  Servers should map it
	// to HTTP 409.
	ErrDatasetExists = errors.New("adsketch: dataset already attached")
)

// dataset is one materialized catalog version: the serving backend plus
// how it was loaded, for stats.  (A file-backed version's SketchFile is
// owned by its release hook, which Closes it when the version drains.)
type dataset struct {
	be          ShardBackend
	mmapped     bool
	path        string
	fileVersion int // codec version of the backing file (0 when not file-backed)
}

// Source describes where a dataset comes from: an in-memory sketch set,
// a sketch file of any codec version (decoded, or mmap'd for v3), or an
// already-built backend (an Engine, a Coordinator over shards — local or
// remote — or anything else implementing ShardBackend).
type Source struct {
	kind       string
	set        SketchSet
	be         ShardBackend
	path       string
	mmap       bool
	partitions int
}

// SetSource serves an in-memory sketch set (any kind) through an Engine
// built at attach time.
func SetSource(set SketchSet) Source { return Source{kind: "set", set: set} }

// BackendSource serves an already-built backend: an Engine, a
// Coordinator (so a partitioned or distributed serving tier is one
// catalog entry), or a custom ShardBackend.
func BackendSource(be ShardBackend) Source { return Source{kind: "backend", be: be} }

// FileSource serves a sketch file of any codec version — a whole set or
// one partition (the latter through a shard Engine).  File-backed
// datasets are evictable: under a catalog memory budget, an idle one may
// be dropped and transparently reloaded from its path on the next query.
func FileSource(path string) Source { return Source{kind: "file", path: path} }

// MmapSource serves a version-3 sketch file via mmap: near-zero attach
// and swap latency, near-zero resident cost (pages are file-backed), so
// mmap datasets are exempt from budget eviction.  Other codec versions
// degrade to a decoding load, as MmapSketchFile does.
func MmapSource(path string) Source { return Source{kind: "file", path: path, mmap: true} }

// WithPartitions splits a file or set source into n in-process shard
// engines behind a Coordinator (NewPartitionedEngine) — the catalog
// entry then answers scatter-gather, bit-for-bit like the unsplit set.
// n <= 1 serves unsplit.
func (s Source) WithPartitions(n int) Source {
	s.partitions = n
	return s
}

// Catalog is a concurrency-safe registry of named, versioned sketch
// datasets, each resolving to a serving backend.  It routes the wire
// protocol by Request.Dataset and supports zero-downtime hot swaps: see
// the package comment above for the lifecycle.
type Catalog struct {
	reg         *catalog.Registry[dataset]
	defaultName string
	engineOpts  []EngineOption
}

// CatalogOption configures NewCatalog.
type CatalogOption func(*Catalog) error

// WithMemoryBudget bounds the summed resident cost of materialized
// datasets, in bytes.  Over budget, idle file-backed (non-mmap) datasets
// are evicted in LRU order and reload on their next query; in-memory,
// backend, and mmap datasets are never evicted.  0 (the default)
// disables eviction.
func WithMemoryBudget(bytes int64) CatalogOption {
	return func(c *Catalog) error {
		if bytes < 0 {
			return fmt.Errorf("%w: WithMemoryBudget(%d), budget must be >= 0 (0 = unlimited)", ErrBadOption, bytes)
		}
		c.reg = catalog.New[dataset](bytes)
		return nil
	}
}

// WithDefaultDataset changes the name that queries with an empty
// Request.Dataset field route to (default DefaultDataset).
func WithDefaultDataset(name string) CatalogOption {
	return func(c *Catalog) error {
		if err := checkDatasetName(name); err != nil {
			return err
		}
		c.defaultName = name
		return nil
	}
}

// WithEngineOptions sets the EngineOptions (cache shards, query
// parallelism) applied to every Engine the catalog builds from a set or
// file source.
func WithEngineOptions(opts ...EngineOption) CatalogOption {
	return func(c *Catalog) error {
		c.engineOpts = opts
		return nil
	}
}

// NewCatalog returns an empty catalog.
func NewCatalog(opts ...CatalogOption) (*Catalog, error) {
	c := &Catalog{
		reg:         catalog.New[dataset](0),
		defaultName: DefaultDataset,
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("%w: nil CatalogOption", ErrBadOption)
		}
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// checkDatasetName vets a dataset name for the registry and the admin
// URL space: non-empty, and only letters, digits, '.', '_', '-'.
func checkDatasetName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty dataset name", ErrBadOption)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("%w: dataset name %q (want letters, digits, '.', '_', '-')", ErrBadOption, name)
		}
	}
	return nil
}

// opener compiles a Source into the registry's open callback and
// reports whether the source is reloadable (evictable under a budget).
func (c *Catalog) opener(src Source) (catalog.Opener[dataset], bool, error) {
	wrap := func(set SketchSet) (ShardBackend, error) {
		if src.partitions > 1 {
			return NewPartitionedEngine(set, src.partitions, c.engineOpts...)
		}
		return NewEngine(set, c.engineOpts...)
	}
	switch src.kind {
	case "set":
		if src.set == nil {
			return nil, false, fmt.Errorf("%w: SetSource(nil)", ErrBadOption)
		}
		set := src.set
		return func() (dataset, int64, func(), error) {
			be, err := wrap(set)
			if err != nil {
				return dataset{}, 0, nil, err
			}
			return dataset{be: be}, datasetCost(set), nil, nil
		}, false, nil
	case "backend":
		if src.be == nil {
			return nil, false, fmt.Errorf("%w: BackendSource(nil)", ErrBadOption)
		}
		if src.partitions > 1 {
			return nil, false, fmt.Errorf("%w: WithPartitions applies to set and file sources, not backends", ErrBadOption)
		}
		be := src.be
		return func() (dataset, int64, func(), error) {
			return dataset{be: be}, 0, nil, nil
		}, false, nil
	case "file":
		if src.path == "" {
			return nil, false, fmt.Errorf("%w: FileSource(\"\")", ErrBadOption)
		}
		path, mm, parts := src.path, src.mmap, src.partitions
		open := func() (dataset, int64, func(), error) {
			openFile := OpenSketchFile
			if mm {
				openFile = MmapSketchFile
			}
			sf, err := openFile(path)
			if err != nil {
				return dataset{}, 0, nil, fmt.Errorf("adsketch: loading dataset from %s: %w", path, err)
			}
			d := dataset{mmapped: sf.Mapped(), path: path, fileVersion: sf.Version()}
			var cost int64
			if p := sf.Partition(); p != nil {
				if parts > 1 {
					sf.Close()
					return dataset{}, 0, nil, fmt.Errorf("%w: %s already holds partition %d/%d; WithPartitions only splits whole sets",
						ErrBadOption, path, p.Index(), p.Count())
				}
				d.be, err = NewShardEngine(p, c.engineOpts...)
				if !sf.Mapped() {
					cost = datasetCost(p.Set())
				}
			} else {
				d.be, err = wrap(sf.Set())
				if !sf.Mapped() {
					cost = datasetCost(sf.Set())
				}
			}
			if err != nil {
				sf.Close()
				return dataset{}, 0, nil, err
			}
			return d, cost, func() { sf.Close() }, nil
		}
		// mmap datasets are exempt from eviction: their resident cost is
		// page cache the kernel already reclaims.
		return open, !mm, nil
	default:
		return nil, false, fmt.Errorf("%w: zero-value Source", ErrBadOption)
	}
}

// serveMode names how a backend serves: one node-range partition of a
// larger set ("shard"), a scatter-gather tier ("coordinator"), or one
// whole set ("single").
func serveMode(be ShardBackend) string {
	if m := be.Meta(); m.Count > 1 {
		return "shard"
	}
	if _, ok := be.(*Coordinator); ok {
		return "coordinator"
	}
	return "single"
}

// datasetCost estimates a set's resident bytes from its column layout:
// per entry, node (4) + dist (8) + rank (8), plus the beta column for
// weighted sets, plus the offsets array.  A budgeting estimate, not an
// accounting.
func datasetCost(set SketchSet) int64 {
	per := int64(20)
	if _, ok := set.(*WeightedSet); ok {
		per += 8
	}
	return int64(set.TotalEntries())*per + int64(set.NumNodes()+1)*8
}

// Attach registers a new dataset under name, materializing it
// immediately (a bad path or set fails the attach, not a later query).
// It fails with ErrDatasetExists when the name is taken.
func (c *Catalog) Attach(name string, src Source) error {
	if err := checkDatasetName(name); err != nil {
		return err
	}
	open, reloadable, err := c.opener(src)
	if err != nil {
		return err
	}
	if err := c.reg.Attach(name, open, reloadable); err != nil {
		if errors.Is(err, catalog.ErrExists) {
			return fmt.Errorf("%w: %q", ErrDatasetExists, name)
		}
		return err
	}
	return nil
}

// Swap atomically publishes a new version of name, attaching it when
// absent, and returns the new version number.  The new version is fully
// materialized before the old one retires, so a failing source leaves
// the old version serving; in-flight queries drain on the old version,
// whose resources (including an mmap'd file's pages) are released only
// when its last reader finishes.
func (c *Catalog) Swap(name string, src Source) (int, error) {
	if err := checkDatasetName(name); err != nil {
		return 0, err
	}
	open, reloadable, err := c.opener(src)
	if err != nil {
		return 0, err
	}
	return c.reg.Swap(name, open, reloadable)
}

// Detach removes name from the catalog.  In-flight queries drain as on
// Swap; new queries naming the dataset fail with ErrUnknownDataset.
func (c *Catalog) Detach(name string) error {
	if err := c.reg.Detach(name); err != nil {
		if errors.Is(err, catalog.ErrUnknown) {
			return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
		}
		return err
	}
	return nil
}

// Close detaches every dataset.  Versions pinned by in-flight queries
// drain as usual.
func (c *Catalog) Close() error {
	c.reg.Close()
	return nil
}

// Datasets returns the attached dataset names, sorted.
func (c *Catalog) Datasets() []string { return c.reg.Names() }

// resolve maps an empty per-request dataset name to the default.
func (c *Catalog) resolve(name string) string {
	if name == "" {
		return c.defaultName
	}
	return name
}

// Dataset is a pinned reference to one version of a catalog dataset.
// Its backend stays valid — a version swapped out or detached underneath
// is not released — until Release.  Every acquired Dataset must be
// released exactly once (Release is idempotent).
type Dataset struct {
	h *catalog.Handle[dataset]
}

// Backend returns the pinned version's serving backend.
func (d *Dataset) Backend() ShardBackend { return d.h.Value.be }

// Version returns the pinned version number (1 on first attach, bumped
// by every swap).
func (d *Dataset) Version() int { return d.h.Version }

// Release drops the pin.
func (d *Dataset) Release() { d.h.Release() }

// Acquire pins the current version of a dataset ("" = the default) and
// returns a handle on it — the long-form API for callers that want to
// issue several queries against one coherent version, or to reach the
// backend's typed surface (e.g. Engine methods).  An evicted dataset is
// reloaded first.
func (c *Catalog) Acquire(name string) (*Dataset, error) {
	h, err := c.reg.Acquire(c.resolve(name))
	if err != nil {
		if errors.Is(err, catalog.ErrUnknown) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, c.resolve(name))
		}
		return nil, err
	}
	return &Dataset{h: h}, nil
}

// AcquireResident pins the current version of a dataset ("" = the
// default) only when it is already materialized: unlike Acquire it never
// reloads an evicted dataset and never refreshes its LRU position, so
// monitoring paths can inspect a backend without disturbing the memory
// budget.  It returns nil for unknown or evicted datasets.
func (c *Catalog) AcquireResident(name string) *Dataset {
	h := c.reg.AcquireResident(c.resolve(name))
	if h == nil {
		return nil
	}
	return &Dataset{h: h}
}

// Do answers one protocol request, routed by Request.Dataset ("" = the
// default dataset).  The resolved backend sees the request with Dataset
// cleared — routing happens exactly once, so a catalog in front of
// remote workers does not re-route by name on the far side — and the
// response is bit-for-bit the one a standalone Engine over the same
// sketch set returns.
func (c *Catalog) Do(ctx context.Context, req Request) (Response, error) {
	name := c.resolve(req.Dataset)
	req.Dataset = ""
	var resp Response
	err := c.reg.View(name, func(v dataset, _ int) error {
		var verr error
		resp, verr = v.be.Do(ctx, req)
		return verr
	})
	if err != nil {
		if errors.Is(err, catalog.ErrUnknown) {
			return Response{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
		}
		return Response{}, err
	}
	return resp, nil
}

// DoBatch answers a batch of protocol requests with Engine.DoBatch's
// semantics (per-request failures inline; only context cancellation
// fails the call), pinning each referenced dataset once for the whole
// batch — so a batch overlapping a Swap answers every request from one
// version, never a mix.
func (c *Catalog) DoBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	type pin struct {
		d   *Dataset
		err error
	}
	// The overwhelmingly common batch targets a single dataset (usually
	// the default), so its pin lives in locals and the map materializes
	// only when a second name appears — the single-dataset path does no
	// per-batch map allocation or per-request map lookups.
	var (
		firstName string
		first     *pin
		pins      map[string]*pin
	)
	defer func() {
		if first != nil && first.d != nil {
			first.d.Release()
		}
		for _, p := range pins {
			if p.d != nil {
				p.d.Release()
			}
		}
	}()
	out := make([]Response, len(reqs))
	for i := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := c.resolve(reqs[i].Dataset)
		var p *pin
		switch {
		case first != nil && name == firstName:
			p = first
		case pins != nil:
			p = pins[name]
		}
		if p == nil {
			d, err := c.Acquire(name)
			p = &pin{d: d, err: err}
			if first == nil {
				firstName, first = name, p
			} else {
				if pins == nil {
					pins = make(map[string]*pin)
				}
				pins[name] = p
			}
		}
		if p.err != nil {
			out[i] = Response{ID: reqs[i].ID, Error: p.err.Error()}
			continue
		}
		req := reqs[i]
		req.Dataset = ""
		resp, err := p.d.Backend().Do(ctx, req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out[i] = Response{ID: reqs[i].ID, Error: err.Error()}
			continue
		}
		out[i] = resp
	}
	return out, nil
}

// DatasetStats is the lifecycle and serving snapshot of one dataset —
// the per-dataset payload of the adsserver /v1/datasets and /statsz
// endpoints.
type DatasetStats struct {
	// Name is the catalog key.
	Name string `json:"name"`
	// Version counts publishes: 1 on first attach, +1 per swap.
	Version int `json:"version"`
	// Refs counts queries currently pinning the current version.
	Refs int `json:"refs"`
	// Draining counts swapped-out versions still held by in-flight
	// queries (their resources are released when this returns to 0).
	Draining int `json:"draining"`
	// Resident reports whether the dataset is materialized; an evicted
	// dataset reloads on its next query.
	Resident bool `json:"resident"`
	// Evictable reports whether the memory-budget LRU may evict it.
	Evictable bool `json:"evictable"`
	// Evictions counts budget evictions so far.
	Evictions int64 `json:"evictions,omitempty"`
	// Bytes is the estimated resident cost charged to the budget.
	Bytes int64 `json:"bytes,omitempty"`
	// Mmap reports a dataset served from an mmap'd v3 file.
	Mmap bool `json:"mmap,omitempty"`
	// Path is the backing file, for file-backed datasets.
	Path string `json:"path,omitempty"`
	// FileVersion is the backing file's codec version (0 = not
	// file-backed).
	FileVersion int `json:"file_version,omitempty"`
	// Mode names how the current version serves: "single" (one whole
	// set), "shard" (one partition), or "coordinator" (scatter-gather);
	// empty while evicted.
	Mode string `json:"mode,omitempty"`
	// Meta is the serving identity of the current version (nil while
	// evicted).
	Meta *ShardMeta `json:"meta,omitempty"`
	// Cache is the version's index-cache snapshot, when its backend
	// reports one (nil while evicted or for remote backends).
	Cache *CacheStats `json:"cache,omitempty"`
}

// CatalogStats is a point-in-time snapshot of the whole catalog.
type CatalogStats struct {
	// Default is the name empty-dataset queries route to.
	Default string `json:"default"`
	// BudgetBytes is the eviction budget (0 = unlimited).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// ResidentBytes sums the estimated cost of materialized versions,
	// including swapped-out versions still draining.
	ResidentBytes int64 `json:"resident_bytes"`
	// Datasets lists every dataset, sorted by name.
	Datasets []DatasetStats `json:"datasets"`
}

// Stats snapshots every dataset's lifecycle counters, version, and (for
// resident datasets) serving identity and cache counters.
func (c *Catalog) Stats() CatalogStats {
	out := CatalogStats{
		Default:     c.defaultName,
		BudgetBytes: c.reg.Budget(),
		Datasets:    []DatasetStats{},
	}
	c.reg.Each(func(st catalog.Stats, v dataset, resident bool) {
		ds := DatasetStats{
			Name:      st.Name,
			Version:   st.Version,
			Refs:      st.Refs,
			Draining:  st.Draining,
			Resident:  st.Resident,
			Evictable: st.Reloadable,
			Evictions: st.Evictions,
			Bytes:     st.Cost,
		}
		if resident {
			ds.Mmap = v.mmapped
			ds.Path = v.path
			ds.FileVersion = v.fileVersion
			meta := v.be.Meta()
			ds.Meta = &meta
			ds.Mode = serveMode(v.be)
			if cs, ok := v.be.(cacheStatser); ok {
				cache := cs.CacheStats()
				ds.Cache = &cache
			}
		}
		out.Datasets = append(out.Datasets, ds)
	})
	out.ResidentBytes = c.reg.Resident()
	return out
}
