package adsketch_test

// Statistical conformance suite: machine-checkable accuracy contracts
// derived from the paper's Theorem 5.1, which bounds the coefficient of
// variation of every HIP estimate by 1/sqrt(2(k-1)) — for all three set
// kinds (uniform, weighted, approximate), because the HIP conditioning
// argument is flavor- and weighting-agnostic.
//
// For each (graph family × k × set kind) cell, the suite estimates
// neighborhood cardinalities for every node through the public
// Engine.Do protocol path (the exact bytes a production server would
// return), compares against exact BFS ground truth, and asserts that
// the empirical NRMSE — the sample analogue of the CV, averaged over
// all nodes — stays within CVTolerance times the theorem's bound.  All
// builds are deterministic in their seeds, so a pass is reproducible,
// and any estimator drift (a changed tie-break, a broken threshold, a
// biased weight) moves the NRMSE and fails the suite loudly.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"adsketch"
)

// CVTolerance is the accepted multiple of the Theorem 5.1 bound.  The
// bound is on the true CV; the empirical NRMSE over n correlated
// estimates (all sketches share one rank permutation) fluctuates around
// it, and 1.4 gives deterministic-seed headroom without masking real
// estimator regressions (which typically blow up NRMSE by far more).
const CVTolerance = 1.4

// hipCVBound is the Theorem 5.1 bound 1/sqrt(2(k-1)) (1/sqrt(2k-2)).
func hipCVBound(k int) float64 { return 1 / math.Sqrt(2*float64(k-1)) }

// conformanceGraph builds one deterministic graph of the named family.
func conformanceGraph(family string) *adsketch.Graph {
	switch family {
	case "path":
		return adsketch.Path(300)
	case "grid":
		return adsketch.Grid(18, 18)
	case "ba":
		return adsketch.PreferentialAttachment(300, 3, 11)
	case "er":
		return adsketch.GNP(300, 0.02, false, 13)
	}
	panic("unknown family " + family)
}

// bfsDistances returns the exact hop distances from src (-1 means
// unreachable).  The conformance graphs are unweighted, so BFS is the
// ground truth the sketches are judged against.
func bfsDistances(g *adsketch.Graph, src int32) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbrs, _ := g.Neighbors(u)
		for _, v := range nbrs {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// exactNeighborhoods computes, for every node, Σ β(j) over j with
// d(v, j) <= radius (β ≡ 1 for plain cardinalities); radius < 0 means
// unbounded (everything reachable).
func exactNeighborhoods(g *adsketch.Graph, radius float64, beta []float64) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		dist := bfsDistances(g, int32(v))
		sum := 0.0
		for j, d := range dist {
			if d < 0 {
				continue
			}
			if radius >= 0 && float64(d) > radius {
				continue
			}
			if beta != nil {
				sum += beta[j]
			} else {
				sum++
			}
		}
		out[v] = sum
	}
	return out
}

// nrmse is the empirical normalized RMS error over all nodes with
// non-zero ground truth — the sample analogue of the estimator's CV.
func nrmse(est, exact []float64) float64 {
	sum, n := 0.0, 0
	for i := range est {
		if exact[i] == 0 {
			continue
		}
		rel := (est[i] - exact[i]) / exact[i]
		sum += rel * rel
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// engineEstimates runs one neighborhood query over every node through
// the public protocol path (Engine.Do), radius < 0 meaning unbounded.
func engineEstimates(t *testing.T, eng *adsketch.Engine, radius float64, n int) []float64 {
	t.Helper()
	nodes := make([]int32, n)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	q := &adsketch.NeighborhoodQuery{Radius: radius, Nodes: nodes}
	if radius < 0 {
		q.Radius, q.Unbounded = 0, true
	}
	resp, err := eng.Do(context.Background(), adsketch.Request{Neighborhood: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Scores) != n {
		t.Fatalf("%d scores for %d nodes", len(resp.Scores), n)
	}
	return resp.Scores
}

// conformanceBeta is the deterministic node weighting of the weighted
// cells (Section 9): small integer weights, so weighted cardinalities
// differ meaningfully from counts.
func conformanceBeta(n int) []float64 {
	beta := make([]float64, n)
	for i := range beta {
		beta[i] = 1 + float64(i%4)
	}
	return beta
}

// TestConformanceHIPBound is the table: NRMSE <= CVTolerance × the
// Theorem 5.1 bound for every (family × k × kind × radius) cell.
func TestConformanceHIPBound(t *testing.T) {
	const buildSeed = 42
	families := []string{"path", "grid", "ba", "er"}
	ks := []int{8, 16, 64}
	// Bounded-radius cells exercise the HIP prefix estimates; unbounded
	// cells the full reachability estimate.  Approximate sketches carry
	// an ε distance slack, so only their unbounded estimates (where the
	// slack cannot move mass across the radius boundary) are pinned to
	// the bound.
	radii := map[string][]float64{
		"uniform":  {2, -1},
		"weighted": {2, -1},
		"approx":   {-1},
	}
	for _, family := range families {
		g := conformanceGraph(family)
		n := g.NumNodes()
		beta := conformanceBeta(n)
		exact := map[string]map[float64][]float64{}
		for kind, rs := range radii {
			exact[kind] = map[float64][]float64{}
			for _, r := range rs {
				if kind == "weighted" {
					exact[kind][r] = exactNeighborhoods(g, r, beta)
				} else {
					exact[kind][r] = exactNeighborhoods(g, r, nil)
				}
			}
		}
		for _, k := range ks {
			for kind, rs := range radii {
				t.Run(fmt.Sprintf("%s/k=%d/%s", family, k, kind), func(t *testing.T) {
					var opts []adsketch.Option
					switch kind {
					case "weighted":
						opts = []adsketch.Option{adsketch.WithNodeWeights(beta)}
					case "approx":
						opts = []adsketch.Option{adsketch.WithApproxEps(0.1)}
					}
					set, err := adsketch.Build(g, append(opts, adsketch.WithK(k), adsketch.WithSeed(buildSeed))...)
					if err != nil {
						t.Fatal(err)
					}
					eng, err := adsketch.NewEngine(set)
					if err != nil {
						t.Fatal(err)
					}
					bound := hipCVBound(k)
					for _, r := range rs {
						est := engineEstimates(t, eng, r, n)
						got := nrmse(est, exact[kind][r])
						if got > CVTolerance*bound {
							t.Errorf("radius %g: NRMSE %.4f exceeds %.2f × bound %.4f (k=%d)",
								r, got, CVTolerance, bound, k)
						} else {
							t.Logf("radius %g: NRMSE %.4f (bound %.4f, k=%d)", r, got, bound, k)
						}
					}
				})
			}
		}
	}
}

// TestConformanceExactRegime pins the exactness property the HIP
// estimator inherits from bottom-k sketches: while a neighborhood holds
// at most k nodes, the sketch contains all of it and the estimate is
// exact, not approximate.  (Path neighborhoods of radius 2 hold <= 5
// nodes, so k = 8 must reproduce them perfectly.)
func TestConformanceExactRegime(t *testing.T) {
	g := conformanceGraph("path")
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	est := engineEstimates(t, eng, 2, g.NumNodes())
	exact := exactNeighborhoods(g, 2, nil)
	for v := range est {
		if est[v] != exact[v] {
			t.Fatalf("node %d: estimate %v differs from exact %v in the sub-k regime", v, est[v], exact[v])
		}
	}
}

// TestConformanceCoordinatorPreservesBound re-runs one cell per set
// kind through a 4-partition coordinator: partitioning must not move a
// single estimate (stronger: it is byte-identical, see cluster_test.go),
// so the conformance bound holds for the scatter-gather tier too.
func TestConformanceCoordinatorPreservesBound(t *testing.T) {
	g := conformanceGraph("ba")
	n := g.NumNodes()
	beta := conformanceBeta(n)
	for kind, opts := range map[string][]adsketch.Option{
		"uniform":  nil,
		"weighted": {adsketch.WithNodeWeights(beta)},
		"approx":   {adsketch.WithApproxEps(0.1)},
	} {
		set, err := adsketch.Build(g, append(opts, adsketch.WithK(16), adsketch.WithSeed(42))...)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := adsketch.NewEngine(set)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := adsketch.NewPartitionedEngine(set, 4)
		if err != nil {
			t.Fatal(err)
		}
		nodes := make([]int32, n)
		for i := range nodes {
			nodes[i] = int32(i)
		}
		req := adsketch.Request{Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: nodes}}
		want, err := eng.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Scores {
			if got.Scores[i] != want.Scores[i] {
				t.Fatalf("%s node %d: coordinator %v, single %v", kind, i, got.Scores[i], want.Scores[i])
			}
		}
	}
}

// TestConformanceIncrementalParity extends the suite to incrementally
// maintained sets: streaming every edge of a conformance cell through an
// empty Ingestor must reproduce the full rebuild's estimates exactly
// (bit-for-bit Engine output on every node, bounded and unbounded), so
// every accuracy contract above transfers verbatim to ingest-frozen sets.
func TestConformanceIncrementalParity(t *testing.T) {
	const buildSeed = 42
	for _, family := range []string{"ba", "er"} {
		t.Run(family, func(t *testing.T) {
			g := conformanceGraph(family)
			n := g.NumNodes()
			set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(buildSeed))
			if err != nil {
				t.Fatal(err)
			}
			ing, err := adsketch.NewEmptyIngestor(g.Directed(), 16, buildSeed)
			if err != nil {
				t.Fatal(err)
			}
			edges := graphEdges(g)
			if _, err := ing.InsertBatch(edges); err != nil {
				t.Fatal(err)
			}
			res, err := ing.Freeze()
			if err != nil {
				t.Fatal(err)
			}
			engFull, err := adsketch.NewEngine(set)
			if err != nil {
				t.Fatal(err)
			}
			engInc, err := adsketch.NewEngine(res.Set)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []float64{2, -1} {
				full := engineEstimates(t, engFull, r, n)
				inc := engineEstimates(t, engInc, r, n)
				for v := range full {
					if full[v] != inc[v] {
						t.Fatalf("radius %g node %d: incremental %v != rebuild %v", r, v, inc[v], full[v])
					}
				}
			}
		})
	}
}
