// Package adsketch implements All-Distances Sketches (ADS) and the
// Historic Inverse Probability (HIP) estimators of
//
//	Edith Cohen. "All-Distances Sketches, Revisited: HIP Estimators for
//	Massive Graphs Analysis." PODS 2014 (arXiv:1306.3284).
//
// An All-Distances Sketch of a node v is a small weighted sample of the
// nodes reachable from v, biased toward closer nodes: node j enters
// ADS(v) with probability ~ k/π_vj, where π_vj is j's rank in v's
// nearest-neighbor order.  Sketches for all nodes are computed in
// near-linear time, and a large class of distance-based statistics —
// neighborhood cardinalities n_d(v), closeness and distance-decay
// centralities C_{α,β}(v), arbitrary Q_g(v) = Σ_j g(j, d_vj) — are
// estimated from a node's sketch alone, with coefficient of variation at
// most 1/sqrt(2(k-1)) for the HIP estimators.
//
// The package is a facade over the internal implementation:
//
//   - graphs: compact CSR graphs, deterministic generators, edge-list I/O;
//   - sketches: bottom-k, k-mins and k-partition ADS, built by
//     PrunedDijkstra (Algorithm 1), unweighted DP rounds, or LocalUpdates
//     (Algorithm 2), over full-precision or base-b ranks, with uniform or
//     weighted (Section 9) nodes;
//   - estimators: basic (Section 4) and HIP (Section 5) cardinality
//     estimators, the permutation estimator (Section 5.4), the size-only
//     estimator (Section 8), and query-time α/β centrality kernels;
//   - streams: ADS over data streams under both time semantics (Section
//     3.1), HyperLogLog and the HIP distinct counter on the same sketch
//     (Section 6 / Algorithm 3), Morris approximate counters with weighted
//     updates and merge (Section 7);
//   - analysis: closeness/harmonic/decay centralities, distance
//     distributions and effective diameters via ANF/HyperANF-style
//     register DP (Appendix B.1).
//
// # Quick start
//
// Build composes the whole design space through functional options, and
// Engine serves batch queries from cached per-node indices:
//
//	g := adsketch.PreferentialAttachment(10000, 5, 1)
//	set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42))
//	if err != nil { ... }
//	eng, err := adsketch.NewEngine(set)
//	if err != nil { ... }
//	sizes, _ := eng.NeighborhoodSizes(ctx, 3, 0, 123) // ~|N_3(0)|, ~|N_3(123)|
//	cl, _ := eng.Closeness(ctx, 0)                    // ~1/Σ_j d(0,j)
//	top, _ := eng.TopCloseness(ctx, 10)
//
// All randomness is deterministic in the seed, and sketches built with
// the same seed are coordinated (Section 2), which enables cross-sketch
// operations such as Jaccard similarity of neighborhoods.
//
// # Serving queries over a wire
//
// The Engine also dispatches a typed, JSON-serializable query protocol —
// Request / Response via Engine.Do and Engine.DoBatch — and every sketch
// set kind serializes through SketchSet.WriteTo / ReadSketchSet, so a
// production process can build once, persist, and serve the protocol
// over any transport.  Sets are stored as columnar frames (one offsets
// array plus shared entry columns per set); WriteSketchSetV3 persists
// that layout verbatim, and OpenSketchFile / MmapSketchFile serve it
// back with O(1) allocations or zero copies.  cmd/adsserver is the
// reference HTTP server (POST /v1/query, worker mode with -mmap); see
// README.md for the wire shapes.
//
// # Serving fleets of datasets
//
// A deployment serves many sketch datasets — one per graph snapshot,
// per day, per k, per flavor — and replaces them under live traffic.
// Catalog is that layer: a registry of named, versioned datasets (each
// an Engine or Coordinator), routed per query by Request.Dataset, with
// zero-downtime hot swaps (Catalog.Swap: in-flight queries drain on the
// old version, whose resources — including an mmap'd SketchFile — are
// released only after its last reader) and optional LRU eviction of
// idle file-backed datasets under a memory budget.  cmd/adsserver
// exposes the catalog over HTTP (-dataset name=path, GET/POST/DELETE
// /v1/datasets).
//
// # Removed legacy constructors
//
// The pre-options constructors (BuildWithOptions, BuildWeighted,
// BuildPriorityWeighted, BuildApprox) were deprecated for one release
// and are now removed; each is reproduced bit-for-bit by Build with the
// equivalent options.  See README.md for the migration table.
package adsketch

import (
	"fmt"
	"io"

	"adsketch/internal/anf"
	"adsketch/internal/centrality"
	"adsketch/internal/core"
	"adsketch/internal/graph"
	"adsketch/internal/hll"
	"adsketch/internal/rank"
	"adsketch/internal/sketch"
	"adsketch/internal/stream"
)

// Graph is a compact immutable graph in CSR form.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int, directed bool) *GraphBuilder {
	return graph.NewBuilder(n, directed)
}

// ReadEdgeList parses a "u v [w]" edge list (see graph.ReadEdgeList).
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	return graph.ReadEdgeList(r, directed)
}

// WriteEdgeList writes a graph as an edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Deterministic graph generators (see package graph for details).
var (
	Path                   = graph.Path
	Cycle                  = graph.Cycle
	Grid                   = graph.Grid
	Complete               = graph.Complete
	Star                   = graph.Star
	RandomTree             = graph.RandomTree
	GNP                    = graph.GNP
	PreferentialAttachment = graph.PreferentialAttachment
	WattsStrogatz          = graph.WattsStrogatz
	WithRandomWeights      = graph.WithRandomWeights
)

// Flavor selects the MinHash sampling scheme underlying the sketches.
type Flavor = sketch.Flavor

// Sketch flavors (Section 2 of the paper).
const (
	BottomK    = sketch.BottomK
	KMins      = sketch.KMins
	KPartition = sketch.KPartition
)

// Algorithm selects a construction algorithm (Section 3).
type Algorithm = core.Algorithm

// Construction algorithms.
const (
	AlgoPrunedDijkstra         = core.AlgoPrunedDijkstra
	AlgoDP                     = core.AlgoDP
	AlgoLocalUpdates           = core.AlgoLocalUpdates
	AlgoBruteForce             = core.AlgoBruteForce
	AlgoPrunedDijkstraParallel = core.AlgoPrunedDijkstraParallel
)

// Set holds the sketches of all nodes of one graph, built with uniform
// (coordinated) ranks; it implements SketchSet and additionally supports
// serialization and the coordinated cross-sketch operations.
type Set = core.Set

// WeightedSet holds the Section 9 weighted sketches of all nodes of one
// graph; it implements SketchSet.
type WeightedSet = core.WeightedSet

// NodeSketch is the per-node query interface shared by all flavors.
type NodeSketch = core.Sketch

// Ranked is one node with its centrality score, as returned by the
// top-N queries of Engine and Centrality.
type Ranked = centrality.Ranked

// ApproxSet holds (1+ε)-approximate bottom-k sketches (Section 3), whose
// construction performs at most log_{1+ε}(n·w_max/w_min) updates per
// entry; it implements SketchSet.
type ApproxSet = core.ApproxSet

// SketchFormatVersion is the streaming sketch file format version written
// by SketchSet.WriteTo and read back by ReadSketchSet.
const SketchFormatVersion = core.EncodeVersion

// SketchFormatVersionColumnar is the columnar (frame-layout) sketch file
// format version written by WriteSketchSetV3 / WritePartitionV3 and
// served zero-copy by OpenSketchFile / MmapSketchFile.
const SketchFormatVersionColumnar = core.EncodeVersionV3

// SketchFile is an opened sketch file: exactly one of a whole set or a
// partition, plus the backing mmap region when the file was mapped.
type SketchFile = core.SketchFile

// OpenSketchFile opens a sketch file of any version.  Version-3
// (columnar) files are read in one call and their columns viewed in
// place — O(1) allocations per set; version-1/2 files fall back to the
// streaming decoder.
func OpenSketchFile(path string) (*SketchFile, error) { return core.OpenSketchFile(path) }

// MmapSketchFile opens a version-3 sketch file by mapping it into memory
// (on linux; elsewhere it degrades to OpenSketchFile): no column is read
// until queried, so a serving process starts in near-constant time
// regardless of file size.  Close the returned file only after all
// sketches and indexes derived from it are out of use.
func MmapSketchFile(path string) (*SketchFile, error) { return core.MmapSketchFile(path) }

// WriteSketchSetV3 serializes a whole sketch set in the columnar
// version-3 format: a fixed header followed by the raw frame columns, so
// encoding is near-memcpy and decoding O(columns).  Estimates from the
// reloaded set are bit-for-bit those of the original.
func WriteSketchSetV3(w io.Writer, set SketchSet) (int64, error) {
	s, ok := set.(core.AnySet)
	if !ok {
		return 0, fmt.Errorf("adsketch: cannot serialize sketch set type %T", set)
	}
	return core.WriteSketchSetV3(w, s)
}

// WritePartitionV3 serializes one partition in the columnar version-3
// format — the shard file an `adsserver -mmap` worker opens.
func WritePartitionV3(w io.Writer, p *Partition) (int64, error) {
	return core.WritePartitionV3(w, p)
}

// Partition is one contiguous node-range shard of a split sketch set:
// the sketches of global nodes [Lo, Hi) of a TotalNodes-node set split
// into Count partitions.  Partitions serialize independently
// (Partition.WriteTo / ReadPartition) and serve independently
// (NewShardEngine); a complete split merges back bit-for-bit
// (MergeSketchSets).
type Partition = core.Partition

// SplitSketchSet partitions a sketch set by node ID into parts
// contiguous shards of near-equal size.  The partitions alias the set's
// sketches, so splitting costs no sketch memory; every HIP estimate
// computed from a partition equals the whole-set one, because entries
// keep their global node IDs.
func SplitSketchSet(set SketchSet, parts int) ([]*Partition, error) {
	return core.SplitSketchSet(set, parts)
}

// MergeSketchSets reassembles a complete split (in any order) back into
// one whole set whose serialization is bit-for-bit identical to the
// original's.
func MergeSketchSets(parts []*Partition) (SketchSet, error) {
	set, err := core.MergeSketchSets(parts)
	if err != nil {
		return nil, err
	}
	return set, nil
}

// ReadPartition deserializes one partition written by Partition.WriteTo,
// validating the partition header and every sketch's invariants.
func ReadPartition(r io.Reader) (*Partition, error) { return core.ReadPartition(r) }

// ReadSketchFile reads either kind of sketch file — a whole set or a
// partition — returning exactly one of the two.  Serving processes that
// accept both (cmd/adsserver) load through this.
func ReadSketchFile(r io.Reader) (SketchSet, *Partition, error) {
	set, part, err := core.ReadSketchFile(r)
	if err != nil {
		return nil, nil, err
	}
	return set, part, nil
}

// ReadSketchSet deserializes a sketch set written by any SketchSet's
// WriteTo method (build once, query many), validating every sketch's
// structural invariants.  The dynamic type of the result is *Set,
// *WeightedSet, or *ApproxSet according to the stored kind; legacy
// version-1 files (WriteSketches) load as *Set.
func ReadSketchSet(r io.Reader) (SketchSet, error) { return core.ReadSketchSet(r) }

// WriteSketches serializes a uniform sketch set in the legacy version-1
// format.
//
// Deprecated: use set.WriteTo(w), which writes the current versioned
// format covering all three set kinds (uniform, weighted, approximate).
func WriteSketches(w io.Writer, set *Set) error { return core.WriteSet(w, set) }

// ReadSketches deserializes a uniform sketch set.
//
// Deprecated: use ReadSketchSet, which restores any set kind.
func ReadSketches(r io.Reader) (*Set, error) { return core.ReadSet(r) }

// NeighborhoodJaccard estimates the Jaccard similarity of N_da(a) and
// N_db(b) from two coordinated bottom-k sketches (same build seed).
func NeighborhoodJaccard(a *core.ADS, da float64, b *core.ADS, db float64) float64 {
	return core.NeighborhoodJaccard(a, da, b, db)
}

// UnionNeighborhood estimates |∪_s N_d(s)| over seed nodes — the timed-
// influence primitive — from coordinated bottom-k sketches.
func UnionNeighborhood(set *Set, seeds []int32, d float64) float64 {
	return core.UnionNeighborhoodEstimate(set, seeds, d)
}

// GreedyInfluenceSeeds greedily selects numSeeds nodes maximizing the
// estimated union coverage |∪ N_d(s)|, evaluated purely on sketches.
func GreedyInfluenceSeeds(set *Set, candidates []int32, numSeeds int, d float64) ([]int32, float64) {
	return core.GreedyInfluenceSeeds(set, candidates, numSeeds, d)
}

// DistanceUpperBound returns a 2-hop-cover-style upper bound on the
// distance between two sketch owners: the minimum of d(a,x)+d(x,b) over
// nodes x sampled in both coordinated sketches (+Inf if none is shared).
func DistanceUpperBound(a, b *core.ADS) float64 {
	return core.DistanceUpperBound(a, b)
}

// HarmonicFromBalls derives HyperBall-style per-node harmonic centralities
// from an ANF run with KeepBalls set.
func HarmonicFromBalls(res *ANFResult) []float64 { return anf.HarmonicFromBalls(res) }

// EstimateNeighborhoodHIP returns the HIP estimate of n_d(v) from a node
// sketch.
func EstimateNeighborhoodHIP(s NodeSketch, d float64) float64 {
	return core.EstimateNeighborhoodHIP(s, d)
}

// HIPIndex is a prebuilt per-sketch query index (distance -> cumulative
// adjusted weight) answering repeated neighborhood queries in O(log size).
type HIPIndex = core.HIPIndex

// NewHIPIndex builds the query index for a node sketch.
func NewHIPIndex(s NodeSketch) *HIPIndex { return core.NewHIPIndex(s) }

// EstimateQ returns the HIP estimate of Q_g(v) = Σ_j g(j, d_vj)
// (equation (5) of the paper).
func EstimateQ(s NodeSketch, g func(node int32, dist float64) float64) float64 {
	return core.EstimateQ(s, g)
}

// EstimateCentrality returns the HIP estimate of C_{α,β}(v)
// (equation (3) of the paper); α must be non-increasing, β >= 0.
func EstimateCentrality(s NodeSketch, alpha func(float64) float64, beta func(int32) float64) float64 {
	return core.EstimateCentrality(s, alpha, beta)
}

// Query-time centrality kernels.
var (
	KernelThreshold    = core.KernelThreshold
	KernelReachability = core.KernelReachability
	KernelExponential  = core.KernelExponential
	KernelHarmonic     = core.KernelHarmonic
	KernelIdentity     = core.KernelIdentity
	UnitBeta           = core.UnitBeta
)

// Centrality answers closeness/harmonic/decay/custom centrality queries,
// distance distributions, and top-N rankings from a sketch set.
type Centrality = centrality.Estimator

// NewCentrality wraps a sketch set (of any kind) for per-call centrality
// queries.  For batch or repeated queries prefer NewEngine, whose cached
// indices avoid rescanning the sketches.
func NewCentrality(set SketchSet) *Centrality { return centrality.NewEstimator(set) }

// Distinct counting on streams (Section 6).

// DistinctCounter is a streaming approximate distinct counter.
type DistinctCounter = stream.Distinct

// NewHIPDistinct returns the paper's recommended distinct counter: HIP on
// a HyperLogLog-shaped sketch (k-partition, base-2, 5-bit registers) —
// Algorithm 3.  Memory is k registers plus one float; NRMSE ~0.87/sqrt(k).
func NewHIPDistinct(k int, seed uint64) *hll.HIP {
	return hll.NewHIP(k, rank.NewSource(seed))
}

// NewHyperLogLog returns the classic HyperLogLog counter (the Section 6
// baseline), with raw and bias-corrected readouts.
func NewHyperLogLog(k int, seed uint64) *hll.Sketch {
	return hll.New(k, rank.NewSource(seed))
}

// NewBottomKDistinct returns the bottom-k HIP distinct counter
// (full-precision ranks, exact up to k, NRMSE ~1/sqrt(2(k-1)) above).
func NewBottomKDistinct(k int, seed uint64) *stream.BottomKCounter {
	return stream.NewBottomKCounter(k, rank.NewSource(seed))
}

// Neighborhood function / distance distribution (Appendix B.1).

// ANFOptions configures the neighborhood-function register DP.
type ANFOptions = anf.Options

// ANFResult is the output of NeighborhoodFunction.
type ANFResult = anf.Result

// ANF readouts.
const (
	ANFBasic = anf.Basic
	ANFHIP   = anf.HIP
)

// NeighborhoodFunction estimates, for every hop count t, the number of
// ordered pairs within distance t, HyperANF-style (k registers per node).
func NeighborhoodFunction(g *Graph, o ANFOptions) (*ANFResult, error) {
	return anf.Compute(g, o)
}

// EffectiveDiameter returns the q-effective diameter implied by an
// estimated neighborhood function.
func EffectiveDiameter(nf []float64, q float64) float64 {
	return anf.EffectiveDiameter(nf, q)
}
