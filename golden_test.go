package adsketch_test

// Golden regression tests: estimates for a pinned seeded build are
// committed under testdata/, so any estimator drift — a changed
// tie-break, a reordered accumulation, a biased weight — fails loudly
// against the recorded values instead of slipping through as "still
// looks plausible".  The same corpus is replayed through a 4-partition
// coordinator, enforcing bit-for-bit coordinator/single-set parity
// against the committed bytes, not just against each other.
//
// Regenerate after an intentional estimator change with:
//
//	go test -run TestGolden -update ./

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"adsketch"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden testdata files")

// goldenBuild is the pinned build every golden value derives from.
// Changing any of these constants invalidates the testdata.
func goldenBuild(t *testing.T) (adsketch.SketchSet, *adsketch.Engine) {
	t.Helper()
	g := adsketch.PreferentialAttachment(200, 3, 7)
	set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	return set, eng
}

// goldenRequests is the pinned query corpus: per-node estimates
// (closeness, harmonic, neighborhood), both topk metrics (order and
// scores), and the coordinated cross-sketch queries.
func goldenRequests() []adsketch.Request {
	nodes := []int32{0, 1, 2, 3, 5, 8, 13, 21, 100, 199}
	return []adsketch.Request{
		{ID: "closeness", Closeness: &adsketch.ClosenessQuery{Nodes: nodes}},
		{ID: "harmonic", Harmonic: &adsketch.HarmonicQuery{Nodes: nodes}},
		{ID: "neighborhood-2", Neighborhood: &adsketch.NeighborhoodQuery{Radius: 2, Nodes: nodes}},
		{ID: "reach", Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: nodes}},
		{ID: "top10-closeness", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 10}},
		{ID: "top10-harmonic", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricHarmonic, K: 10}},
		{ID: "jaccard", Jaccard: &adsketch.JaccardQuery{A: 0, RadiusA: 2, B: 199, RadiusB: 2}},
		{ID: "influence", Influence: &adsketch.InfluenceQuery{Seeds: []int32{0, 50, 150}, Radius: 2}},
		{ID: "distance-bound", DistanceBound: &adsketch.DistanceBoundQuery{A: 17, B: 181}},
	}
}

const goldenPath = "testdata/golden_uniform.json"

// goldenEvaluate runs the corpus through a backend's protocol dispatch
// and returns each response as its wire bytes.
func goldenEvaluate(t *testing.T, do func(context.Context, adsketch.Request) (adsketch.Response, error)) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, 0, len(goldenRequests()))
	for _, req := range goldenRequests() {
		resp, err := do(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", req.ID, err)
		}
		raw, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, raw)
	}
	return out
}

func TestGoldenEstimates(t *testing.T) {
	set, eng := goldenBuild(t)
	got := goldenEvaluate(t, eng.Do)

	if *updateGolden {
		payload, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(payload, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d responses)", goldenPath, len(got))
		return
	}

	payload, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update ./` to create it)", err)
	}
	var want []json.RawMessage
	if err := json.Unmarshal(payload, &want); err != nil {
		t.Fatal(err)
	}
	reqs := goldenRequests()
	if len(want) != len(reqs) {
		t.Fatalf("golden file has %d responses for %d requests; regenerate with -update", len(want), len(reqs))
	}
	compact := func(raw json.RawMessage) string {
		var buf bytes.Buffer
		if err := json.Compact(&buf, raw); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	check := func(label string, got []json.RawMessage) {
		for i := range want {
			if compact(got[i]) != compact(want[i]) {
				t.Errorf("%s: %s drifted from golden:\n  got  %s\n  want %s", label, reqs[i].ID, got[i], want[i])
			}
		}
	}
	check("single engine", got)

	// The 4-partition coordinator must reproduce the committed bytes too
	// — parity pinned against the golden record, not just live parity.
	coord, err := adsketch.NewPartitionedEngine(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	check("4-partition coordinator", goldenEvaluate(t, coord.Do))
}

// TestGoldenIngestReplayParity anchors incremental maintenance to the
// committed record: streaming every edge of the pinned graph through an
// empty Ingestor and freezing must answer the whole golden corpus with
// exactly the committed bytes, not merely agree with a live rebuild.
func TestGoldenIngestReplayParity(t *testing.T) {
	if *updateGolden {
		t.Skip("golden update run")
	}
	g := adsketch.PreferentialAttachment(200, 3, 7)
	ing, err := adsketch.NewEmptyIngestor(false, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	edges := graphEdges(g)
	if n, err := ing.InsertBatch(edges); err != nil || n != len(edges) {
		t.Fatalf("InsertBatch: n=%d err=%v", n, err)
	}
	res, err := ing.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adsketch.NewEngine(res.Set)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenEvaluate(t, eng.Do)

	payload, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update ./` to create it)", err)
	}
	var want []json.RawMessage
	if err := json.Unmarshal(payload, &want); err != nil {
		t.Fatal(err)
	}
	reqs := goldenRequests()
	compact := func(raw json.RawMessage) string {
		var buf bytes.Buffer
		if err := json.Compact(&buf, raw); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for i := range want {
		if compact(got[i]) != compact(want[i]) {
			t.Errorf("ingest-frozen set: %s drifted from golden:\n  got  %s\n  want %s", reqs[i].ID, got[i], want[i])
		}
	}
}

// TestGoldenTopOrder pins the ranking order (not just scores) of both
// topk metrics: the (score desc, node asc) tie-break is part of the
// protocol contract the coordinator merge reproduces.
func TestGoldenTopOrder(t *testing.T) {
	if *updateGolden {
		t.Skip("golden update run")
	}
	_, eng := goldenBuild(t)
	for _, metric := range []string{adsketch.MetricCloseness, adsketch.MetricHarmonic} {
		resp, err := eng.Do(context.Background(), adsketch.Request{TopK: &adsketch.TopKQuery{Metric: metric, K: 25}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(resp.Ranking); i++ {
			a, b := resp.Ranking[i-1], resp.Ranking[i]
			if a.Score < b.Score || (a.Score == b.Score && a.Node >= b.Node) {
				t.Fatalf("%s ranking order violated at %d: %+v then %+v", metric, i, a, b)
			}
		}
	}
}
