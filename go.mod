module adsketch

go 1.24
