package adsketch_test

// Binary wire-protocol benchmarks, twins of BenchmarkEngineDoJSON: the
// request the server pays for over each transport.  The acceptance bar
// for the codec is EngineDoWire at most a third of EngineDoJSON, with a
// zero-allocation encode path.

import (
	"context"
	"testing"

	"adsketch"
	"adsketch/internal/wire"
)

// benchWireRequest is the same query BenchmarkEngineDoJSON serves.
func benchWireRequest() adsketch.Request {
	return adsketch.Request{
		Neighborhood: &adsketch.NeighborhoodQuery{Radius: 3, Nodes: []int32{0, 17, 123, 999, 7777}},
	}
}

// BenchmarkEngineDoWire: the full binary wire cost of one request —
// frame decode, dispatch, evaluate, frame encode — as adsserver pays it
// on the binary path.
func BenchmarkEngineDoWire(b *testing.B) {
	_, eng := benchEngine(b)
	req := benchWireRequest()
	in := wire.Get()
	defer in.Free()
	wire.EncodeRequest(in, &req)
	out := wire.Get()
	defer out.Free()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, err := wire.DecodeRequest(in.B)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := eng.Do(ctx, decoded)
		if err != nil {
			b.Fatal(err)
		}
		wire.EncodeResponse(out, &resp)
	}
}

// BenchmarkEngineWireEncode: the response-encode half alone.  With the
// pooled buffer warm this must run allocation-free — the criterion the
// zero-copy serving path is pinned on.
func BenchmarkEngineWireEncode(b *testing.B) {
	_, eng := benchEngine(b)
	resp, err := eng.Do(context.Background(), benchWireRequest())
	if err != nil {
		b.Fatal(err)
	}
	out := wire.Get()
	defer out.Free()
	wire.EncodeResponse(out, &resp) // warm the buffer to steady-state capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.EncodeResponse(out, &resp)
	}
}

// BenchmarkEngineWireDecode: the request-decode half alone, for the
// trajectory record.
func BenchmarkEngineWireDecode(b *testing.B) {
	req := benchWireRequest()
	in := wire.Get()
	defer in.Free()
	wire.EncodeRequest(in, &req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeRequest(in.B); err != nil {
			b.Fatal(err)
		}
	}
}
