package adsketch_test

// Streaming-ingest benchmarks, part of the BENCH_engine.json trajectory:
// BenchmarkIngestInsert prices one edge insertion into a warm maintainer
// (candidate propagation, amortized over a long random stream),
// BenchmarkIngestInsertBatch the batched variant, and
// BenchmarkIngestFreezePublish a full freeze-and-publish cycle (freeze
// base + deltas into a columnar frame, hot-swap it into a catalog).

import (
	"testing"

	"adsketch"
)

// benchIngestEdges drains a deterministic random stream once.
func benchIngestEdges(b *testing.B, nodes, count int) []adsketch.Edge {
	b.Helper()
	src, err := adsketch.NewRandomEdgeSource(nodes, count, false, 7)
	if err != nil {
		b.Fatal(err)
	}
	edges := make([]adsketch.Edge, 0, count)
	for {
		e, ok := src.Next()
		if !ok {
			return edges
		}
		edges = append(edges, e)
	}
}

// benchIngestor returns an ingestor warmed with the given edge prefix.
func benchIngestor(b *testing.B, edges []adsketch.Edge, warm int, opts ...adsketch.IngestorOption) *adsketch.Ingestor {
	b.Helper()
	ing, err := adsketch.NewEmptyIngestor(false, 16, 42, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ing.InsertBatch(edges[:warm]); err != nil {
		b.Fatal(err)
	}
	return ing
}

// BenchmarkIngestInsert: one edge insertion into a maintainer warmed
// with 4000 edges over 2000 nodes — steady-state propagation cost.
func BenchmarkIngestInsert(b *testing.B) {
	edges := benchIngestEdges(b, 2000, 4000)
	ing := benchIngestor(b, edges, len(edges))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if err := ing.InsertWeighted(e.U, e.V, e.W); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestInsertBatch: a 256-edge batch per op on the same warm
// maintainer — the serving tier's POST /v1/ingest shape.
func BenchmarkIngestInsertBatch(b *testing.B) {
	edges := benchIngestEdges(b, 2000, 4096)
	ing := benchIngestor(b, edges, len(edges))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := (i * 256) % (len(edges) - 256)
		if _, err := ing.InsertBatch(edges[at : at+256]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestFreezePublish: ingest a small delta, then freeze the
// base + deltas into a new columnar frame and hot-swap it into a catalog
// — the full publish cycle of one version.
func BenchmarkIngestFreezePublish(b *testing.B) {
	cat, err := adsketch.NewCatalog()
	if err != nil {
		b.Fatal(err)
	}
	defer cat.Close()
	edges := benchIngestEdges(b, 2000, 4096)
	ing := benchIngestor(b, edges, 4000, adsketch.WithPublish(cat, "bench"))
	if _, err := ing.Freeze(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[4000+i%96]
		if err := ing.InsertWeighted(e.U, e.V, e.W); err != nil {
			b.Fatal(err)
		}
		if _, err := ing.Freeze(); err != nil {
			b.Fatal(err)
		}
	}
}
