// figures regenerates every table and figure of the paper's evaluation as
// tab-separated series on stdout.
//
// Usage:
//
//	figures fig2    -k 10 -runs 500 -maxn 10000 -metric nrmse
//	figures fig3    -k 16 -runs 5000 -maxn 1000000 -metric mre
//	figures size    -runs 400
//	figures baseb   -runs 300
//	figures hllconst -runs 500
//	figures anf     -n 2000 -k 64
//	figures graphq  -n 2000 -k 16 -d 3
//
// The paper's exact parameters are the defaults for fig2/fig3 panel rows
// when -k is given (runs per Figure 2: k=5:1000, k=10:500, k=50:250 with
// maxn 10000/10000/50000; Figure 3: k=16/32:5000 runs, k=64:2000, maxn
// 10^6).  Smaller -runs values reproduce the same curves with more noise.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"adsketch"
	"adsketch/internal/graph"
	"adsketch/internal/simulate"
	"adsketch/internal/sketch"
	"adsketch/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "fig2":
		err = runFig2(args)
	case "fig3":
		err = runFig3(args)
	case "size":
		err = runSize(args)
	case "baseb":
		err = runBaseB(args)
	case "hllconst":
		err = runHLLConst(args)
	case "anf":
		err = runANF(args)
	case "graphq":
		err = runGraphQ(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: figures {fig2|fig3|size|baseb|hllconst|anf|graphq} [flags]")
	os.Exit(2)
}

func metricFlag(fs *flag.FlagSet) *string {
	return fs.String("metric", "nrmse", "nrmse, mre, or bias")
}

func parseMetric(s string) (stats.Metric, error) {
	switch s {
	case "nrmse":
		return stats.NRMSE, nil
	case "mre":
		return stats.MRE, nil
	case "bias":
		return stats.Bias, nil
	}
	return 0, fmt.Errorf("unknown metric %q", s)
}

// paper defaults for Figure 2 rows.
func fig2Defaults(k int) (runs, maxn int) {
	switch k {
	case 5:
		return 1000, 10000
	case 10:
		return 500, 10000
	case 50:
		return 250, 50000
	}
	return 500, 10000
}

func runFig2(args []string) error {
	fs := flag.NewFlagSet("fig2", flag.ExitOnError)
	k := fs.Int("k", 10, "sketch parameter (paper: 5, 10, 50)")
	runs := fs.Int("runs", 0, "randomizations (0 = paper default for k)")
	maxn := fs.Int("maxn", 0, "max cardinality (0 = paper default for k)")
	seed := fs.Uint64("seed", 42, "base seed")
	metric := metricFlag(fs)
	fs.Parse(args)
	m, err := parseMetric(*metric)
	if err != nil {
		return err
	}
	dr, dn := fig2Defaults(*k)
	if *runs == 0 {
		*runs = dr
	}
	if *maxn == 0 {
		*maxn = dn
	}
	panel := simulate.Figure2(simulate.Fig2Config{
		K: *k, MaxN: *maxn, Runs: *runs, Seed: *seed,
	})
	if err := panel.WriteTSV(os.Stdout, m); err != nil {
		return err
	}
	fmt.Printf("# reference: basic CV UB = %.4f, HIP CV UB = %.4f, basic MRE UB = %.4f, HIP MRE UB = %.4f\n",
		sketch.BasicCV(*k), sketch.HIPCV(*k), sketch.BasicMRE(*k), sketch.HIPMRE(*k))
	return nil
}

func runFig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	k := fs.Int("k", 16, "registers (paper: 16, 32, 64)")
	runs := fs.Int("runs", 0, "randomizations (0 = paper default for k)")
	maxn := fs.Int("maxn", 1000000, "max cardinality")
	seed := fs.Uint64("seed", 5, "base seed")
	metric := metricFlag(fs)
	fs.Parse(args)
	m, err := parseMetric(*metric)
	if err != nil {
		return err
	}
	if *runs == 0 {
		if *k >= 64 {
			*runs = 2000
		} else {
			*runs = 5000
		}
	}
	panel := simulate.Figure3(simulate.Fig3Config{
		K: *k, MaxN: *maxn, Runs: *runs, Seed: *seed,
	})
	if err := panel.WriteTSV(os.Stdout, m); err != nil {
		return err
	}
	fmt.Printf("# reference: HIP base-2 CV analysis = %.4f\n", sketch.HIPBaseBCV(*k, 2))
	return nil
}

func runSize(args []string) error {
	fs := flag.NewFlagSet("size", flag.ExitOnError)
	runs := fs.Int("runs", 400, "randomizations")
	seed := fs.Uint64("seed", 3, "base seed")
	fs.Parse(args)
	rows := simulate.SizeTable(
		[]int{1, 5, 10, 50},
		[]int{100, 1000, 10000, 100000},
		*runs, *seed)
	fmt.Println("# Lemma 2.2: expected bottom-k ADS size = k + k(H_n - H_k)")
	fmt.Println("k\tn\tmeasured\texpected\trel.err")
	for _, r := range rows {
		fmt.Printf("%d\t%d\t%.2f\t%.2f\t%+.3f%%\n",
			r.K, r.N, r.Measured, r.Expected, 100*(r.Measured-r.Expected)/r.Expected)
	}
	return nil
}

func runBaseB(args []string) error {
	fs := flag.NewFlagSet("baseb", flag.ExitOnError)
	runs := fs.Int("runs", 300, "randomizations")
	n := fs.Int("n", 20000, "plateau cardinality")
	seed := fs.Uint64("seed", 11, "base seed")
	fs.Parse(args)
	rows := simulate.BaseBTable(
		[]int{16, 64},
		[]float64{0, math.Pow(2, 0.25), math.Sqrt2, 2},
		*n, *runs, *seed)
	fmt.Println("# Section 5.6: HIP CV with base-b ranks ~ sqrt((1+b)/(4(k-1)))")
	fmt.Println("k\tbase\tNRMSE\tanalysis\tratio")
	for _, r := range rows {
		base := "full"
		if r.Base != 0 {
			base = fmt.Sprintf("%.4g", r.Base)
		}
		fmt.Printf("%d\t%s\t%.4f\t%.4f\t%.3f\n",
			r.K, base, r.NRMSE, r.Analysis, r.NRMSE/r.Analysis)
	}
	return nil
}

func runHLLConst(args []string) error {
	fs := flag.NewFlagSet("hllconst", flag.ExitOnError)
	runs := fs.Int("runs", 500, "randomizations")
	n := fs.Int("n", 100000, "plateau cardinality")
	seed := fs.Uint64("seed", 13, "base seed")
	fs.Parse(args)
	rows := simulate.HLLConstantsTable([]int{16, 32, 64}, *n, *runs, *seed)
	fmt.Println("# Section 6: NRMSE constants (x sqrt(k)); paper: HLL ~1.08, HIP ~0.866, ratio ~1.25")
	fmt.Println("k\tHLLxsqrt(k)\tHIPxsqrt(k)\tratio")
	for _, r := range rows {
		fmt.Printf("%d\t%.3f\t%.3f\t%.3f\n", r.K, r.HLLConst, r.HIPConst, r.Ratio)
	}
	return nil
}

func runANF(args []string) error {
	fs := flag.NewFlagSet("anf", flag.ExitOnError)
	n := fs.Int("n", 2000, "nodes")
	k := fs.Int("k", 64, "registers per node")
	seed := fs.Uint64("seed", 17, "seed")
	fs.Parse(args)
	g := adsketch.WattsStrogatz(*n, 6, 0.05, *seed)
	exact := graph.NeighborhoodFunction(g)
	basic, err := adsketch.NeighborhoodFunction(g, adsketch.ANFOptions{K: *k, Seed: *seed, Readout: adsketch.ANFBasic})
	if err != nil {
		return err
	}
	hip, err := adsketch.NeighborhoodFunction(g, adsketch.ANFOptions{K: *k, Seed: *seed, Readout: adsketch.ANFHIP})
	if err != nil {
		return err
	}
	fmt.Println("# Appendix B.1: neighborhood function, basic vs HIP readout")
	fmt.Println("hops\texact\tbasic\tHIP")
	for t := range exact {
		b, h := last(basic.NF, t), last(hip.NF, t)
		fmt.Printf("%d\t%d\t%.0f\t%.0f\n", t, exact[t], b, h)
	}
	fmt.Printf("# effective diameter (0.9): exact %.2f, basic %.2f, HIP %.2f\n",
		graph.EffectiveDiameter(exact, 0.9),
		adsketch.EffectiveDiameter(basic.NF, 0.9),
		adsketch.EffectiveDiameter(hip.NF, 0.9))
	return nil
}

func last(nf []float64, t int) float64 {
	if t >= len(nf) {
		t = len(nf) - 1
	}
	return nf[t]
}

// runGraphQ measures per-node HIP estimate quality on a generated graph —
// the graph-side counterpart of the Figure 2 cardinality panels: mean
// relative error of |N_d(v)| and closeness over sampled nodes, served by
// the batch Engine against exact traversal answers.
func runGraphQ(args []string) error {
	fs := flag.NewFlagSet("graphq", flag.ExitOnError)
	n := fs.Int("n", 2000, "nodes (preferential attachment, m=4)")
	k := fs.Int("k", 16, "sketch parameter")
	d := fs.Float64("d", 3, "neighborhood radius")
	seed := fs.Uint64("seed", 7, "seed")
	sample := fs.Int("sample", 200, "sampled query nodes")
	fs.Parse(args)
	g := adsketch.PreferentialAttachment(*n, 4, *seed)
	set, err := adsketch.Build(g, adsketch.WithK(*k), adsketch.WithSeed(*seed))
	if err != nil {
		return err
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		return err
	}
	if *sample > *n {
		*sample = *n
	}
	nodes := make([]int32, *sample)
	for i := range nodes {
		nodes[i] = int32(i * *n / *sample)
	}
	ctx := context.Background()
	sizes, err := eng.NeighborhoodSizes(ctx, *d, nodes...)
	if err != nil {
		return err
	}
	clos, err := eng.Closeness(ctx, nodes...)
	if err != nil {
		return err
	}
	var mreN, mreC float64
	for i, v := range nodes {
		if exact := float64(graph.NeighborhoodSize(g, v, *d)); exact > 0 {
			mreN += math.Abs(sizes[i]-exact) / exact
		}
		if exact := graph.Closeness(g, v); exact > 0 {
			mreC += math.Abs(clos[i]-exact) / exact
		}
	}
	mreN /= float64(len(nodes))
	mreC /= float64(len(nodes))
	fmt.Println("# per-node HIP estimate quality on a BA graph (batch Engine vs exact)")
	fmt.Println("k\td\tsample\tMRE(|N_d|)\tMRE(closeness)\tref HIP CV")
	fmt.Printf("%d\t%g\t%d\t%.4f\t%.4f\t%.4f\n",
		*k, *d, len(nodes), mreN, mreC, sketch.HIPCV(*k))
	return nil
}
