package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"adsketch/internal/core"
	"adsketch/internal/distbuild"
	"adsketch/internal/graph"
)

// runDistBuild drives a partition-parallel build: P workers — in-process
// with -dist, or remote adsserver -buildworker processes with -workers —
// each construct the sketches of one node range and freeze them straight
// to a v3 partition file.  The output files are byte-identical to
// `adstool build -save` followed by `adstool split -v3`, so they drop
// into the same adsserver -mmap / coordinator serving setup.
func runDistBuild(fs *flag.FlagSet, path string, directed bool, dist int, workers, out string) error {
	if dist != 0 && workers != "" {
		return fmt.Errorf("build: -dist and -workers are mutually exclusive")
	}
	if path == "" || path == "-" {
		return fmt.Errorf("build: a distributed build needs -graph to be a file path every worker can open, not stdin")
	}
	if out == "" {
		return fmt.Errorf("build: a distributed build writes partition files; -out prefix is required")
	}
	var clash []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "flavor", "algo", "baseb", "parallel", "save":
			clash = append(clash, "-"+f.Name)
		}
	})
	if len(clash) > 0 {
		return fmt.Errorf("build: %s cannot be combined with a distributed build (bottom-k only; -eps and -weights select the kind)",
			strings.Join(clash, ", "))
	}
	get := func(name string) flag.Getter { return fs.Lookup(name).Value.(flag.Getter) }
	k := get("k").Get().(int)
	seed := get("seed").Get().(uint64)
	eps := get("eps").Get().(float64)
	weights := get("weights").Get().(string)
	priority := get("priority").Get().(bool)

	// The driver never loads the graph: one streaming pass finds the
	// node count, then only candidates and frozen bytes move around.
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	maxID, edges := int32(-1), int64(0)
	err = graph.ScanEdges(f, func(u, v int32, w float64, hasW bool) error {
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges++
		return nil
	})
	f.Close()
	if err != nil {
		return err
	}
	if maxID < 0 {
		return fmt.Errorf("build: %s has no edges", path)
	}

	spec := distbuild.Spec{
		Path:     path,
		Directed: directed,
		N:        int(maxID) + 1,
		K:        k,
		Seed:     seed,
		Kind:     distbuild.KindUniform,
	}
	switch {
	case eps >= 0 && weights != "":
		return fmt.Errorf("build: -eps and -weights are mutually exclusive in a distributed build")
	case eps >= 0:
		spec.Kind, spec.Eps = distbuild.KindApprox, eps
	case weights != "":
		spec.Kind, spec.Scheme = distbuild.KindWeighted, core.ExponentialWeights
		if priority {
			spec.Scheme = core.PriorityWeights
		}
		for _, s := range strings.Split(weights, ",") {
			w, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad -weights entry %q: %v", s, err)
			}
			spec.Beta = append(spec.Beta, w)
		}
	case priority:
		return fmt.Errorf("build: -priority needs -weights")
	}

	var exs []distbuild.Exchanger
	var urls []string
	if workers != "" {
		for _, u := range strings.Split(workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		spec.Parts = len(urls)
		exs, err = distbuild.NewHTTPExchangers(spec, urls, &http.Client{Timeout: 5 * time.Minute})
	} else {
		spec.Parts = dist
		exs, err = distbuild.NewLocalExchangers(spec)
	}
	if err != nil {
		return err
	}

	start := time.Now()
	res, err := distbuild.Run(context.Background(), exs)
	if err != nil {
		return err
	}
	transport := "in-process"
	if workers != "" {
		transport = "wire"
	}
	fmt.Printf("distributed %s build (k=%d) of %d nodes / %d edge lines across %d workers (%s): %d rounds, %d candidates in %v\n",
		spec.Kind, spec.K, spec.N, edges, spec.Parts, transport,
		res.Rounds, res.Candidates, time.Since(start).Round(time.Millisecond))
	for i, b := range res.Partitions {
		name := fmt.Sprintf("%s.p%dof%d.ads", out, i, spec.Parts)
		if err := os.WriteFile(name, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("  %s (%d bytes)\n", name, len(b))
	}
	return nil
}
