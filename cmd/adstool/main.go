// adstool builds All-Distances Sketches for an edge-list graph and answers
// centrality queries from them.
//
// Usage:
//
//	adstool gen   -type ba -n 10000 -m 5 -seed 1 > graph.txt
//	adstool stats -graph graph.txt
//	adstool build -graph graph.txt -k 16 -seed 42 -save sketches.ads
//	adstool split -sketches sketches.ads -partitions 4 -out sketches
//	adstool merge -out sketches.ads sketches.p0of4.ads sketches.p1of4.ads ...
//	adstool convert -sketches sketches.ads -out sketches.v3.ads
//	adstool info sketches.v3.ads
//	adstool query -graph graph.txt -sketches sketches.ads -node 17 -d 3
//	adstool query -remote http://localhost:8080 -node 17 -d 3
//	adstool query -remote http://localhost:8080 -dataset nightly -node 17 -d 3
//	adstool ingest -remote http://localhost:8080 -dataset live -graph stream.txt -batch 512
//	adstool top   -graph graph.txt -k 16 -seed 42 -top 10
//	adstool influence -graph graph.txt -k 16 -seeds 3 -d 2
//
// split partitions a sketch file by node ID into P independently
// servable shard files (one adsserver worker each); merge reassembles a
// complete split bit-for-bit.  Graphs are whitespace edge lists ("u v"
// or "u v w" per line, '#' comments); "-" reads stdin.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"adsketch"
	"adsketch/internal/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = runGen(args)
	case "stats":
		err = runStats(args)
	case "build":
		err = runBuild(args)
	case "split":
		err = runSplit(args)
	case "merge":
		err = runMerge(args)
	case "convert":
		err = runConvert(args)
	case "info":
		err = runInfo(args)
	case "query":
		err = runQuery(args)
	case "ingest":
		err = runIngest(args)
	case "top":
		err = runTop(args)
	case "influence":
		err = runInfluence(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adstool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adstool {gen|stats|build|split|merge|convert|info|query|ingest|top|influence} [flags]")
	os.Exit(2)
}

func loadGraph(path string, directed bool) (*adsketch.Graph, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return adsketch.ReadEdgeList(r, directed)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	typ := fs.String("type", "ba", "graph type: ba, gnp, grid, ws, tree")
	n := fs.Int("n", 1000, "nodes")
	m := fs.Int("m", 3, "edges per node (ba) / lattice degree (ws)")
	p := fs.Float64("p", 0.01, "edge probability (gnp) / rewiring (ws)")
	seed := fs.Uint64("seed", 1, "generator seed")
	fs.Parse(args)
	var g *adsketch.Graph
	switch *typ {
	case "ba":
		g = adsketch.PreferentialAttachment(*n, *m, *seed)
	case "gnp":
		g = adsketch.GNP(*n, *p, false, *seed)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = adsketch.Grid(side, side)
	case "ws":
		g = adsketch.WattsStrogatz(*n, *m, *p, *seed)
	case "tree":
		g = adsketch.RandomTree(*n, *seed)
	default:
		return fmt.Errorf("unknown graph type %q", *typ)
	}
	return adsketch.WriteEdgeList(os.Stdout, g)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	path := fs.String("graph", "-", "edge list path")
	directed := fs.Bool("directed", false, "treat edges as directed")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	_, comps := graph.ConnectedComponents(g)
	fmt.Printf("nodes      %d\n", g.NumNodes())
	fmt.Printf("edges      %d\n", g.NumEdges())
	fmt.Printf("directed   %v\n", g.Directed())
	fmt.Printf("weighted   %v\n", g.Weighted())
	fmt.Printf("components %d\n", comps)
	return nil
}

// buildFlags registers the sketch-construction flags shared by the
// build/query/top/influence subcommands; the returned function resolves
// them into the functional options of adsketch.Build.
func buildFlags(fs *flag.FlagSet) (path *string, directed *bool, opts func() ([]adsketch.Option, error)) {
	path = fs.String("graph", "-", "edge list path")
	directed = fs.Bool("directed", false, "treat edges as directed")
	k := fs.Int("k", 16, "sketch parameter")
	seed := fs.Uint64("seed", 42, "rank seed")
	flavor := fs.String("flavor", "bottomk", "bottomk, kmins, kpartition")
	algo := fs.String("algo", "dijkstra", "dijkstra, dp, local, brute, pardijkstra")
	baseB := fs.Float64("baseb", 0, "base-b rank rounding (> 1; 0 = full precision)")
	eps := fs.Float64("eps", -1, "(1+eps)-approximate construction (>= 0 enables)")
	weights := fs.String("weights", "", "comma-separated per-node weights (Section 9)")
	priority := fs.Bool("priority", false, "priority (Sequential Poisson) ranks for -weights")
	parallel := fs.Int("parallel", 0, "construction workers (0 = GOMAXPROCS)")
	opts = func() ([]adsketch.Option, error) {
		out := []adsketch.Option{adsketch.WithK(*k), adsketch.WithSeed(*seed)}
		switch *flavor {
		case "bottomk":
		case "kmins":
			out = append(out, adsketch.WithFlavor(adsketch.KMins))
		case "kpartition":
			out = append(out, adsketch.WithFlavor(adsketch.KPartition))
		default:
			return nil, fmt.Errorf("unknown flavor %q", *flavor)
		}
		switch *algo {
		case "dijkstra":
		case "dp":
			out = append(out, adsketch.WithAlgorithm(adsketch.AlgoDP))
		case "local":
			out = append(out, adsketch.WithAlgorithm(adsketch.AlgoLocalUpdates))
		case "brute":
			out = append(out, adsketch.WithAlgorithm(adsketch.AlgoBruteForce))
		case "pardijkstra":
			out = append(out, adsketch.WithAlgorithm(adsketch.AlgoPrunedDijkstraParallel))
		default:
			return nil, fmt.Errorf("unknown algorithm %q", *algo)
		}
		if *baseB != 0 {
			out = append(out, adsketch.WithBaseB(*baseB))
		}
		if *eps >= 0 {
			out = append(out, adsketch.WithApproxEps(*eps))
		}
		if *weights != "" {
			var beta []float64
			for _, f := range strings.Split(*weights, ",") {
				w, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					return nil, fmt.Errorf("bad -weights entry %q: %v", f, err)
				}
				beta = append(beta, w)
			}
			out = append(out, adsketch.WithNodeWeights(beta))
		}
		if *priority {
			out = append(out, adsketch.WithPriorityRanks())
		}
		if *parallel != 0 {
			out = append(out, adsketch.WithParallelism(*parallel))
		}
		return out, nil
	}
	return
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	path, directed, opts := buildFlags(fs)
	save := fs.String("save", "", "write the sketch set to this file")
	dist := fs.Int("dist", 0, "distributed build across this many in-process partition workers; writes one partition file per worker under -out")
	workers := fs.String("workers", "", "comma-separated adsserver -buildworker base URLs; distributed build with one remote worker per partition, edge list read from each worker's own filesystem")
	out := fs.String("out", "", "output prefix of distributed-build partition files (<out>.p<i>of<P>.ads); required with -dist/-workers")
	fs.Parse(args)
	if *dist != 0 || *workers != "" {
		return runDistBuild(fs, *path, *directed, *dist, *workers, *out)
	}
	if *out != "" {
		return fmt.Errorf("build: -out applies to distributed builds (-dist/-workers); use -save for a whole-set build")
	}
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	bo, err := opts()
	if err != nil {
		return err
	}
	start := time.Now()
	set, err := adsketch.Build(g, bo...)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("built sketches (k=%d) for %d nodes in %v\n",
		set.K(), g.NumNodes(), elapsed.Round(time.Millisecond))
	fmt.Printf("total entries %d (%.1f per node; Lemma 2.2 predicts ~k(1+ln n-ln k))\n",
		set.TotalEntries(), float64(set.TotalEntries())/float64(g.NumNodes()))
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := set.WriteTo(f)
		if err != nil {
			return err
		}
		fmt.Printf("sketches saved to %s (%d bytes, format v%d)\n", *save, n, adsketch.SketchFormatVersion)
	}
	return nil
}

// runSplit partitions a sketch file by node ID into independently
// servable shard files.
func runSplit(args []string) error {
	fs := flag.NewFlagSet("split", flag.ExitOnError)
	sketchPath := fs.String("sketches", "", "sketch file to split (required)")
	partitions := fs.Int("partitions", 2, "number of node-range partitions")
	out := fs.String("out", "", "output prefix (default: -sketches without its extension)")
	v3 := fs.Bool("v3", false, "write columnar v3 shard files (what adsserver -mmap serves)")
	fs.Parse(args)
	if *sketchPath == "" {
		return fmt.Errorf("split: -sketches is required")
	}
	prefix := *out
	if prefix == "" {
		prefix = strings.TrimSuffix(*sketchPath, ".ads")
	}
	f, err := os.Open(*sketchPath)
	if err != nil {
		return err
	}
	set, err := adsketch.ReadSketchSet(f)
	f.Close()
	if err != nil {
		return err
	}
	parts, err := adsketch.SplitSketchSet(set, *partitions)
	if err != nil {
		return err
	}
	for _, p := range parts {
		name := fmt.Sprintf("%s.p%dof%d.ads", prefix, p.Index(), p.Count())
		g, err := os.Create(name)
		if err != nil {
			return err
		}
		var n int64
		if *v3 {
			n, err = adsketch.WritePartitionV3(g, p)
		} else {
			n, err = p.WriteTo(g)
		}
		if cerr := g.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", name, err)
		}
		fmt.Printf("partition %d/%d: nodes [%d, %d) -> %s (%d bytes)\n",
			p.Index(), p.Count(), p.Lo(), p.Hi(), name, n)
	}
	return nil
}

// runMerge reassembles a complete split back into one sketch file.
func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "output sketch file (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("merge: -out is required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("merge: no partition files given")
	}
	parts := make([]*adsketch.Partition, 0, fs.NArg())
	for _, name := range fs.Args() {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		p, err := adsketch.ReadPartition(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		parts = append(parts, p)
	}
	set, err := adsketch.MergeSketchSets(parts)
	if err != nil {
		return err
	}
	g, err := os.Create(*out)
	if err != nil {
		return err
	}
	n, err := set.WriteTo(g)
	if cerr := g.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	fmt.Printf("merged %d partitions (%d nodes, k=%d) -> %s (%d bytes)\n",
		len(parts), set.NumNodes(), set.K(), *out, n)
	return nil
}

// runConvert rewrites any sketch file (v1, v2, or v3; whole set or
// partition) into the columnar v3 format that OpenSketchFile reads with
// O(1) allocations and `adsserver -mmap` maps zero-copy.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("sketches", "", "sketch file to convert (required; any version, whole set or partition)")
	out := fs.String("out", "", "output v3 sketch file (required)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -sketches and -out are required")
	}
	sf, err := adsketch.OpenSketchFile(*in)
	if err != nil {
		return err
	}
	defer sf.Close()
	g, err := os.Create(*out)
	if err != nil {
		return err
	}
	var n int64
	if p := sf.Partition(); p != nil {
		n, err = adsketch.WritePartitionV3(g, p)
	} else {
		n, err = adsketch.WriteSketchSetV3(g, sf.Set())
	}
	if cerr := g.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	fmt.Printf("converted %s -> %s (%d bytes, format v%d)\n", *in, *out, n, adsketch.SketchFormatVersionColumnar)
	return nil
}

// runInfo prints a sketch file's codec and set metadata without serving
// it: version, kind, parameters, sizes, and the partition header for
// kind-3 shard files.
func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: usage: adstool info <file>")
	}
	path := fs.Arg(0)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	sf, err := adsketch.OpenSketchFile(path)
	if err != nil {
		return err
	}
	defer sf.Close()
	set := sf.Set()
	if p := sf.Partition(); p != nil {
		set = p.Set()
	}
	fmt.Printf("file            %s\n", path)
	fmt.Printf("bytes           %d\n", st.Size())
	fmt.Printf("codec version   %d\n", sf.Version())
	switch x := set.(type) {
	case *adsketch.Set:
		o := x.Options()
		flavor := "bottomk"
		switch o.Flavor {
		case adsketch.KMins:
			flavor = "kmins"
		case adsketch.KPartition:
			flavor = "kpartition"
		}
		fmt.Printf("kind            uniform\n")
		fmt.Printf("flavor          %s\n", flavor)
		fmt.Printf("k               %d\n", o.K)
		fmt.Printf("seed            %d\n", o.Seed)
		if o.BaseB != 0 {
			fmt.Printf("base-b          %g\n", o.BaseB)
		} else {
			fmt.Printf("base-b          full precision\n")
		}
	case *adsketch.WeightedSet:
		fmt.Printf("kind            weighted\n")
		fmt.Printf("k               %d\n", x.K())
		fmt.Printf("scheme          %v\n", x.Scheme())
	case *adsketch.ApproxSet:
		fmt.Printf("kind            approximate\n")
		fmt.Printf("k               %d\n", x.K())
		fmt.Printf("epsilon         %g\n", x.Epsilon())
	}
	if p := sf.Partition(); p != nil {
		fmt.Printf("partition       %d of %d\n", p.Index(), p.Count())
		fmt.Printf("node range      [%d, %d)\n", p.Lo(), p.Hi())
		fmt.Printf("total nodes     %d\n", p.TotalNodes())
	}
	nodes, entries := set.NumNodes(), set.TotalEntries()
	fmt.Printf("nodes           %d\n", nodes)
	fmt.Printf("total entries   %d\n", entries)
	if nodes > 0 {
		fmt.Printf("entries/node    %.1f\n", float64(entries)/float64(nodes))
		fmt.Printf("bytes/node      %.1f\n", float64(st.Size())/float64(nodes))
	}
	return nil
}

// loadOrBuild returns sketches from -sketches when given, else builds.
func loadOrBuild(sketchPath string, g *adsketch.Graph, opts func() ([]adsketch.Option, error)) (adsketch.SketchSet, error) {
	if sketchPath != "" {
		f, err := os.Open(sketchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return adsketch.ReadSketchSet(f)
	}
	bo, err := opts()
	if err != nil {
		return nil, err
	}
	return adsketch.Build(g, bo...)
}

func runInfluence(args []string) error {
	fs := flag.NewFlagSet("influence", flag.ExitOnError)
	path, directed, opts := buildFlags(fs)
	seeds := fs.Int("seeds", 3, "number of influence seeds to pick")
	d := fs.Float64("d", 2, "influence radius")
	sketchPath := fs.String("sketches", "", "load sketches from file instead of building")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	set, err := loadOrBuild(*sketchPath, g, opts)
	if err != nil {
		return err
	}
	uniform, ok := set.(*adsketch.Set)
	if !ok {
		return fmt.Errorf("influence requires uniform-rank (coordinated) sketches")
	}
	chosen, coverage := adsketch.GreedyInfluenceSeeds(uniform, nil, *seeds, *d)
	fmt.Printf("greedy %d-seed set for radius %g: %v\n", *seeds, *d, chosen)
	fmt.Printf("estimated union coverage: %.1f nodes (%.1f%% of graph)\n",
		coverage, 100*coverage/float64(g.NumNodes()))
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	path, directed, opts := buildFlags(fs)
	nodes := fs.String("node", "0", "query node(s), comma-separated")
	d := fs.Float64("d", 2, "query distance")
	sketchPath := fs.String("sketches", "", "load sketches from file instead of building")
	remote := fs.String("remote", "", "query a running adsserver at this base URL instead of evaluating locally")
	dataset := fs.String("dataset", "", "with -remote: the named catalog dataset to query (empty = the server's default dataset)")
	fs.Parse(args)
	if *remote != "" {
		// Remote mode answers from the server's sketch files; refuse local
		// graph/build flags rather than silently ignoring them.
		var conflicting []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "remote", "node", "d", "dataset":
			default:
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			return fmt.Errorf("-remote queries the server's sketches; %s have no effect (drop them)", strings.Join(conflicting, ", "))
		}
	} else if *dataset != "" {
		return fmt.Errorf("-dataset names a server-side catalog dataset; it requires -remote")
	}
	var vs []int32
	for _, f := range strings.Split(*nodes, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 32)
		if err != nil {
			return fmt.Errorf("bad -node entry %q: %v", f, err)
		}
		vs = append(vs, int32(v))
	}
	// The four metric batches, as one protocol batch.  Locally they go
	// through Engine.DoBatch; remotely the same values cross the wire to
	// an adsserver, which answers from its own loaded sketch file.
	// An infinite -d means "everything reachable", which the wire shape
	// spells Unbounded (JSON cannot carry +Inf).
	sizesQ := &adsketch.NeighborhoodQuery{Radius: *d, Nodes: vs}
	if math.IsInf(*d, 1) {
		sizesQ.Radius, sizesQ.Unbounded = 0, true
	}
	reqs := []adsketch.Request{
		{ID: "sizes", Dataset: *dataset, Neighborhood: sizesQ},
		{ID: "reach", Dataset: *dataset, Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: vs}},
		{ID: "closeness", Dataset: *dataset, Closeness: &adsketch.ClosenessQuery{Nodes: vs}},
		{ID: "harmonic", Dataset: *dataset, Harmonic: &adsketch.HarmonicQuery{Nodes: vs}},
	}
	var resps []adsketch.Response
	if *remote != "" {
		var err error
		if resps, err = postQueryBatch(*remote, reqs); err != nil {
			return err
		}
		if *dataset != "" {
			fmt.Printf("remote %s, dataset %q, one request batch:\n", *remote, *dataset)
		} else {
			fmt.Printf("remote %s, one request batch:\n", *remote)
		}
	} else {
		g, err := loadGraph(*path, *directed)
		if err != nil {
			return err
		}
		set, err := loadOrBuild(*sketchPath, g, opts)
		if err != nil {
			return err
		}
		eng, err := adsketch.NewEngine(set)
		if err != nil {
			return err
		}
		if resps, err = eng.DoBatch(context.Background(), reqs); err != nil {
			return err
		}
		fmt.Printf("k=%d, one batch per metric, %d cached indices:\n", set.K(), eng.CachedIndices())
	}
	byID := make(map[string]adsketch.Response, len(resps))
	for _, r := range resps {
		if r.Error != "" {
			return fmt.Errorf("query %s: %s", r.ID, r.Error)
		}
		byID[r.ID] = r
	}
	for _, id := range []string{"sizes", "reach", "closeness", "harmonic"} {
		if len(byID[id].Scores) != len(vs) {
			return fmt.Errorf("query %s: got %d scores for %d nodes", id, len(byID[id].Scores), len(vs))
		}
	}
	for i, v := range vs {
		fmt.Printf("node %d:\n", v)
		fmt.Printf("  |N_%g|      %.1f\n", *d, byID["sizes"].Scores[i])
		fmt.Printf("  reachable   %.1f\n", byID["reach"].Scores[i])
		fmt.Printf("  closeness   %.4e\n", byID["closeness"].Scores[i])
		fmt.Printf("  harmonic    %.1f\n", byID["harmonic"].Scores[i])
	}
	return nil
}

// runIngest replays an edge-list file (SNAP-style "u v [w]" lines, '#'
// or '%' comments; "-" reads stdin) against a running adsserver's
// streaming-ingest endpoint, in batched POSTs to /v1/ingest/{dataset}.
// The server maintains the dataset's sketches incrementally and
// hot-swaps a frozen version into its catalog every -freeze-every edges
// (a server-side setting); -freeze forces one final publish so the tail
// of the stream is queryable immediately.
func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	remote := fs.String("remote", "", "base URL of a running adsserver started with -ingest (required)")
	dataset := fs.String("dataset", "", "catalog dataset to ingest into (required)")
	path := fs.String("graph", "-", "edge list to replay; \"-\" reads stdin")
	batch := fs.Int("batch", 512, "edges per POST")
	freeze := fs.Bool("freeze", true, "freeze and publish after the final batch")
	fs.Parse(args)
	if *remote == "" || *dataset == "" {
		return fmt.Errorf("ingest: -remote and -dataset are required")
	}
	if *batch < 1 {
		return fmt.Errorf("ingest: -batch %d is invalid; want >= 1", *batch)
	}
	var r io.Reader = os.Stdin
	if *path != "-" {
		f, err := os.Open(*path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	url := strings.TrimSuffix(*remote, "/") + "/v1/ingest/" + *dataset
	client := &http.Client{Timeout: 5 * time.Minute}

	type wireEdge struct {
		U int32   `json:"u"`
		V int32   `json:"v"`
		W float64 `json:"w,omitempty"`
	}
	type ingestBody struct {
		Edges  []wireEdge `json:"edges"`
		Freeze bool       `json:"freeze,omitempty"`
	}
	type ingestResult struct {
		Accepted int   `json:"accepted"`
		Pending  int64 `json:"pending_edges"`
		Freezes  int64 `json:"freezes"`
		Version  int   `json:"version"`
	}
	var last ingestResult
	post := func(b ingestBody) error {
		payload, err := json.Marshal(b)
		if err != nil {
			return err
		}
		httpResp, err := client.Post(url, "application/json", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		defer httpResp.Body.Close()
		out, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
		if err != nil {
			return err
		}
		if httpResp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s: %s", url, httpResp.Status, strings.TrimSpace(string(out)))
		}
		return json.Unmarshal(out, &last)
	}

	start := time.Now()
	sent, batches := 0, 0
	buf := make([]wireEdge, 0, *batch)
	flush := func(final bool) error {
		if len(buf) == 0 && !(final && *freeze) {
			return nil
		}
		if err := post(ingestBody{Edges: buf, Freeze: final && *freeze}); err != nil {
			return err
		}
		sent += len(buf)
		batches++
		buf = buf[:0]
		return nil
	}
	err := graph.ScanEdges(r, func(u, v int32, w float64, hasW bool) error {
		e := wireEdge{U: u, V: v}
		if hasW {
			e.W = w
		}
		buf = append(buf, e)
		if len(buf) >= *batch {
			return flush(false)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(true); err != nil {
		return err
	}
	elapsed := time.Since(start)
	rate := float64(sent) / elapsed.Seconds()
	fmt.Printf("ingested %d edges in %d batch(es) into %q in %v (%.0f edges/s)\n",
		sent, batches, *dataset, elapsed.Round(time.Millisecond), rate)
	fmt.Printf("server: %d freeze(s) published, version %d, %d edge(s) pending\n",
		last.Freezes, last.Version, last.Pending)
	return nil
}

// postQueryBatch sends a protocol batch to an adsserver and decodes the
// responses.
func postQueryBatch(base string, reqs []adsketch.Request) ([]adsketch.Response, error) {
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, err
	}
	url := strings.TrimSuffix(base, "/") + "/v1/query"
	client := &http.Client{Timeout: 60 * time.Second}
	httpResp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, httpResp.Status, strings.TrimSpace(string(payload)))
	}
	var resps []adsketch.Response
	if err := json.Unmarshal(payload, &resps); err != nil {
		return nil, fmt.Errorf("%s: decoding responses: %v", url, err)
	}
	return resps, nil
}

func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	path, directed, opts := buildFlags(fs)
	top := fs.Int("top", 10, "ranking size")
	sketchPath := fs.String("sketches", "", "load sketches from file instead of building")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	set, err := loadOrBuild(*sketchPath, g, opts)
	if err != nil {
		return err
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		return err
	}
	ranked, err := eng.TopCloseness(context.Background(), *top)
	if err != nil {
		return err
	}
	fmt.Printf("top %d by estimated closeness:\n", *top)
	for i, r := range ranked {
		fmt.Printf("%3d. node %-8d %.4e\n", i+1, r.Node, r.Score)
	}
	return nil
}
