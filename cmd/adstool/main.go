// adstool builds All-Distances Sketches for an edge-list graph and answers
// centrality queries from them.
//
// Usage:
//
//	adstool gen   -type ba -n 10000 -m 5 -seed 1 > graph.txt
//	adstool stats -graph graph.txt
//	adstool build -graph graph.txt -k 16 -seed 42 -save sketches.ads
//	adstool query -graph graph.txt -sketches sketches.ads -node 17 -d 3
//	adstool top   -graph graph.txt -k 16 -seed 42 -top 10
//	adstool influence -graph graph.txt -k 16 -seeds 3 -d 2
//
// Graphs are whitespace edge lists ("u v" or "u v w" per line, '#'
// comments); "-" reads stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"adsketch"
	"adsketch/internal/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = runGen(args)
	case "stats":
		err = runStats(args)
	case "build":
		err = runBuild(args)
	case "query":
		err = runQuery(args)
	case "top":
		err = runTop(args)
	case "influence":
		err = runInfluence(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adstool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adstool {gen|stats|build|query|top|influence} [flags]")
	os.Exit(2)
}

func loadGraph(path string, directed bool) (*adsketch.Graph, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return adsketch.ReadEdgeList(r, directed)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	typ := fs.String("type", "ba", "graph type: ba, gnp, grid, ws, tree")
	n := fs.Int("n", 1000, "nodes")
	m := fs.Int("m", 3, "edges per node (ba) / lattice degree (ws)")
	p := fs.Float64("p", 0.01, "edge probability (gnp) / rewiring (ws)")
	seed := fs.Uint64("seed", 1, "generator seed")
	fs.Parse(args)
	var g *adsketch.Graph
	switch *typ {
	case "ba":
		g = adsketch.PreferentialAttachment(*n, *m, *seed)
	case "gnp":
		g = adsketch.GNP(*n, *p, false, *seed)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = adsketch.Grid(side, side)
	case "ws":
		g = adsketch.WattsStrogatz(*n, *m, *p, *seed)
	case "tree":
		g = adsketch.RandomTree(*n, *seed)
	default:
		return fmt.Errorf("unknown graph type %q", *typ)
	}
	return adsketch.WriteEdgeList(os.Stdout, g)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	path := fs.String("graph", "-", "edge list path")
	directed := fs.Bool("directed", false, "treat edges as directed")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	_, comps := graph.ConnectedComponents(g)
	fmt.Printf("nodes      %d\n", g.NumNodes())
	fmt.Printf("edges      %d\n", g.NumEdges())
	fmt.Printf("directed   %v\n", g.Directed())
	fmt.Printf("weighted   %v\n", g.Weighted())
	fmt.Printf("components %d\n", comps)
	return nil
}

func buildFlags(fs *flag.FlagSet) (path *string, directed *bool, k *int, seed *uint64, flavor, algo *string) {
	path = fs.String("graph", "-", "edge list path")
	directed = fs.Bool("directed", false, "treat edges as directed")
	k = fs.Int("k", 16, "sketch parameter")
	seed = fs.Uint64("seed", 42, "rank seed")
	flavor = fs.String("flavor", "bottomk", "bottomk, kmins, kpartition")
	algo = fs.String("algo", "dijkstra", "dijkstra, dp, local, brute")
	return
}

func parseOpts(k int, seed uint64, flavor string) (adsketch.Options, error) {
	o := adsketch.Options{K: k, Seed: seed}
	switch flavor {
	case "bottomk":
		o.Flavor = adsketch.BottomK
	case "kmins":
		o.Flavor = adsketch.KMins
	case "kpartition":
		o.Flavor = adsketch.KPartition
	default:
		return o, fmt.Errorf("unknown flavor %q", flavor)
	}
	return o, nil
}

func parseAlgo(name string) (adsketch.Algorithm, error) {
	switch name {
	case "dijkstra":
		return adsketch.AlgoPrunedDijkstra, nil
	case "dp":
		return adsketch.AlgoDP, nil
	case "local":
		return adsketch.AlgoLocalUpdates, nil
	case "brute":
		return adsketch.AlgoBruteForce, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	path, directed, k, seed, flavor, algo := buildFlags(fs)
	save := fs.String("save", "", "write the sketch set to this file")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	o, err := parseOpts(*k, *seed, *flavor)
	if err != nil {
		return err
	}
	a, err := parseAlgo(*algo)
	if err != nil {
		return err
	}
	start := time.Now()
	set, err := adsketch.Build(g, o, a)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("built %v sketches for %d nodes in %v\n",
		set.Options().Flavor, g.NumNodes(), elapsed.Round(time.Millisecond))
	fmt.Printf("total entries %d (%.1f per node; Lemma 2.2 predicts ~k(1+ln n-ln k))\n",
		set.TotalEntries(), float64(set.TotalEntries())/float64(g.NumNodes()))
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := adsketch.WriteSketches(f, set); err != nil {
			return err
		}
		fmt.Printf("sketches saved to %s\n", *save)
	}
	return nil
}

// loadOrBuild returns sketches from -sketches when given, else builds.
func loadOrBuild(sketchPath string, g *adsketch.Graph, k int, seed uint64, flavor, algo string) (*adsketch.Set, error) {
	if sketchPath != "" {
		f, err := os.Open(sketchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return adsketch.ReadSketches(f)
	}
	o, err := parseOpts(k, seed, flavor)
	if err != nil {
		return nil, err
	}
	a, err := parseAlgo(algo)
	if err != nil {
		return nil, err
	}
	return adsketch.Build(g, o, a)
}

func runInfluence(args []string) error {
	fs := flag.NewFlagSet("influence", flag.ExitOnError)
	path, directed, k, seed, flavor, algo := buildFlags(fs)
	seeds := fs.Int("seeds", 3, "number of influence seeds to pick")
	d := fs.Float64("d", 2, "influence radius")
	sketchPath := fs.String("sketches", "", "load sketches from file instead of building")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	set, err := loadOrBuild(*sketchPath, g, *k, *seed, *flavor, *algo)
	if err != nil {
		return err
	}
	chosen, coverage := adsketch.GreedyInfluenceSeeds(set, nil, *seeds, *d)
	fmt.Printf("greedy %d-seed set for radius %g: %v\n", *seeds, *d, chosen)
	fmt.Printf("estimated union coverage: %.1f nodes (%.1f%% of graph)\n",
		coverage, 100*coverage/float64(g.NumNodes()))
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	path, directed, k, seed, flavor, algo := buildFlags(fs)
	node := fs.Int("node", 0, "query node")
	d := fs.Float64("d", 2, "query distance")
	sketchPath := fs.String("sketches", "", "load sketches from file instead of building")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	set, err := loadOrBuild(*sketchPath, g, *k, *seed, *flavor, *algo)
	if err != nil {
		return err
	}
	o := set.Options()
	v := int32(*node)
	c := adsketch.NewCentrality(set)
	fmt.Printf("node %d (k=%d, %v):\n", v, *k, o.Flavor)
	fmt.Printf("  |N_%g|      %.1f\n", *d, c.NeighborhoodSize(v, *d))
	fmt.Printf("  reachable   %.1f\n", c.Reachable(v))
	fmt.Printf("  closeness   %.4e\n", c.Closeness(v))
	fmt.Printf("  harmonic    %.1f\n", c.Harmonic(v))
	fmt.Printf("  exp-decay   %.1f\n", c.ExponentialDecay(v))
	return nil
}

func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	path, directed, k, seed, flavor, algo := buildFlags(fs)
	top := fs.Int("top", 10, "ranking size")
	sketchPath := fs.String("sketches", "", "load sketches from file instead of building")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	set, err := loadOrBuild(*sketchPath, g, *k, *seed, *flavor, *algo)
	if err != nil {
		return err
	}
	c := adsketch.NewCentrality(set)
	fmt.Printf("top %d by estimated closeness:\n", *top)
	for i, r := range c.TopCloseness(*top) {
		fmt.Printf("%3d. node %-8d %.4e\n", i+1, r.Node, r.Score)
	}
	return nil
}
