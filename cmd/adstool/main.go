// adstool builds All-Distances Sketches for an edge-list graph and answers
// centrality queries from them.
//
// Usage:
//
//	adstool gen   -type ba -n 10000 -m 5 -seed 1 > graph.txt
//	adstool stats -graph graph.txt
//	adstool build -graph graph.txt -k 16 -seed 42 -save sketches.ads
//	adstool query -graph graph.txt -sketches sketches.ads -node 17 -d 3
//	adstool top   -graph graph.txt -k 16 -seed 42 -top 10
//	adstool influence -graph graph.txt -k 16 -seeds 3 -d 2
//
// Graphs are whitespace edge lists ("u v" or "u v w" per line, '#'
// comments); "-" reads stdin.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"adsketch"
	"adsketch/internal/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = runGen(args)
	case "stats":
		err = runStats(args)
	case "build":
		err = runBuild(args)
	case "query":
		err = runQuery(args)
	case "top":
		err = runTop(args)
	case "influence":
		err = runInfluence(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adstool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: adstool {gen|stats|build|query|top|influence} [flags]")
	os.Exit(2)
}

func loadGraph(path string, directed bool) (*adsketch.Graph, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return adsketch.ReadEdgeList(r, directed)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	typ := fs.String("type", "ba", "graph type: ba, gnp, grid, ws, tree")
	n := fs.Int("n", 1000, "nodes")
	m := fs.Int("m", 3, "edges per node (ba) / lattice degree (ws)")
	p := fs.Float64("p", 0.01, "edge probability (gnp) / rewiring (ws)")
	seed := fs.Uint64("seed", 1, "generator seed")
	fs.Parse(args)
	var g *adsketch.Graph
	switch *typ {
	case "ba":
		g = adsketch.PreferentialAttachment(*n, *m, *seed)
	case "gnp":
		g = adsketch.GNP(*n, *p, false, *seed)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = adsketch.Grid(side, side)
	case "ws":
		g = adsketch.WattsStrogatz(*n, *m, *p, *seed)
	case "tree":
		g = adsketch.RandomTree(*n, *seed)
	default:
		return fmt.Errorf("unknown graph type %q", *typ)
	}
	return adsketch.WriteEdgeList(os.Stdout, g)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	path := fs.String("graph", "-", "edge list path")
	directed := fs.Bool("directed", false, "treat edges as directed")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	_, comps := graph.ConnectedComponents(g)
	fmt.Printf("nodes      %d\n", g.NumNodes())
	fmt.Printf("edges      %d\n", g.NumEdges())
	fmt.Printf("directed   %v\n", g.Directed())
	fmt.Printf("weighted   %v\n", g.Weighted())
	fmt.Printf("components %d\n", comps)
	return nil
}

// buildFlags registers the sketch-construction flags shared by the
// build/query/top/influence subcommands; the returned function resolves
// them into the functional options of adsketch.Build.
func buildFlags(fs *flag.FlagSet) (path *string, directed *bool, opts func() ([]adsketch.Option, error)) {
	path = fs.String("graph", "-", "edge list path")
	directed = fs.Bool("directed", false, "treat edges as directed")
	k := fs.Int("k", 16, "sketch parameter")
	seed := fs.Uint64("seed", 42, "rank seed")
	flavor := fs.String("flavor", "bottomk", "bottomk, kmins, kpartition")
	algo := fs.String("algo", "dijkstra", "dijkstra, dp, local, brute, pardijkstra")
	baseB := fs.Float64("baseb", 0, "base-b rank rounding (> 1; 0 = full precision)")
	eps := fs.Float64("eps", -1, "(1+eps)-approximate construction (>= 0 enables)")
	weights := fs.String("weights", "", "comma-separated per-node weights (Section 9)")
	priority := fs.Bool("priority", false, "priority (Sequential Poisson) ranks for -weights")
	parallel := fs.Int("parallel", 0, "construction workers (0 = GOMAXPROCS)")
	opts = func() ([]adsketch.Option, error) {
		out := []adsketch.Option{adsketch.WithK(*k), adsketch.WithSeed(*seed)}
		switch *flavor {
		case "bottomk":
		case "kmins":
			out = append(out, adsketch.WithFlavor(adsketch.KMins))
		case "kpartition":
			out = append(out, adsketch.WithFlavor(adsketch.KPartition))
		default:
			return nil, fmt.Errorf("unknown flavor %q", *flavor)
		}
		switch *algo {
		case "dijkstra":
		case "dp":
			out = append(out, adsketch.WithAlgorithm(adsketch.AlgoDP))
		case "local":
			out = append(out, adsketch.WithAlgorithm(adsketch.AlgoLocalUpdates))
		case "brute":
			out = append(out, adsketch.WithAlgorithm(adsketch.AlgoBruteForce))
		case "pardijkstra":
			out = append(out, adsketch.WithAlgorithm(adsketch.AlgoPrunedDijkstraParallel))
		default:
			return nil, fmt.Errorf("unknown algorithm %q", *algo)
		}
		if *baseB != 0 {
			out = append(out, adsketch.WithBaseB(*baseB))
		}
		if *eps >= 0 {
			out = append(out, adsketch.WithApproxEps(*eps))
		}
		if *weights != "" {
			var beta []float64
			for _, f := range strings.Split(*weights, ",") {
				w, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					return nil, fmt.Errorf("bad -weights entry %q: %v", f, err)
				}
				beta = append(beta, w)
			}
			out = append(out, adsketch.WithNodeWeights(beta))
		}
		if *priority {
			out = append(out, adsketch.WithPriorityRanks())
		}
		if *parallel != 0 {
			out = append(out, adsketch.WithParallelism(*parallel))
		}
		return out, nil
	}
	return
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	path, directed, opts := buildFlags(fs)
	save := fs.String("save", "", "write the sketch set to this file")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	bo, err := opts()
	if err != nil {
		return err
	}
	start := time.Now()
	set, err := adsketch.Build(g, bo...)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("built sketches (k=%d) for %d nodes in %v\n",
		set.K(), g.NumNodes(), elapsed.Round(time.Millisecond))
	fmt.Printf("total entries %d (%.1f per node; Lemma 2.2 predicts ~k(1+ln n-ln k))\n",
		set.TotalEntries(), float64(set.TotalEntries())/float64(g.NumNodes()))
	if *save != "" {
		uniform, ok := set.(*adsketch.Set)
		if !ok {
			return fmt.Errorf("-save supports uniform-rank sketch sets only (not weighted/approximate)")
		}
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := adsketch.WriteSketches(f, uniform); err != nil {
			return err
		}
		fmt.Printf("sketches saved to %s\n", *save)
	}
	return nil
}

// loadOrBuild returns sketches from -sketches when given, else builds.
func loadOrBuild(sketchPath string, g *adsketch.Graph, opts func() ([]adsketch.Option, error)) (adsketch.SketchSet, error) {
	if sketchPath != "" {
		f, err := os.Open(sketchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return adsketch.ReadSketches(f)
	}
	bo, err := opts()
	if err != nil {
		return nil, err
	}
	return adsketch.Build(g, bo...)
}

func runInfluence(args []string) error {
	fs := flag.NewFlagSet("influence", flag.ExitOnError)
	path, directed, opts := buildFlags(fs)
	seeds := fs.Int("seeds", 3, "number of influence seeds to pick")
	d := fs.Float64("d", 2, "influence radius")
	sketchPath := fs.String("sketches", "", "load sketches from file instead of building")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	set, err := loadOrBuild(*sketchPath, g, opts)
	if err != nil {
		return err
	}
	uniform, ok := set.(*adsketch.Set)
	if !ok {
		return fmt.Errorf("influence requires uniform-rank (coordinated) sketches")
	}
	chosen, coverage := adsketch.GreedyInfluenceSeeds(uniform, nil, *seeds, *d)
	fmt.Printf("greedy %d-seed set for radius %g: %v\n", *seeds, *d, chosen)
	fmt.Printf("estimated union coverage: %.1f nodes (%.1f%% of graph)\n",
		coverage, 100*coverage/float64(g.NumNodes()))
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	path, directed, opts := buildFlags(fs)
	nodes := fs.String("node", "0", "query node(s), comma-separated")
	d := fs.Float64("d", 2, "query distance")
	sketchPath := fs.String("sketches", "", "load sketches from file instead of building")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	set, err := loadOrBuild(*sketchPath, g, opts)
	if err != nil {
		return err
	}
	var vs []int32
	for _, f := range strings.Split(*nodes, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 32)
		if err != nil {
			return fmt.Errorf("bad -node entry %q: %v", f, err)
		}
		vs = append(vs, int32(v))
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		return err
	}
	ctx := context.Background()
	sizes, err := eng.NeighborhoodSizes(ctx, *d, vs...)
	if err != nil {
		return err
	}
	reach, err := eng.NeighborhoodSizes(ctx, math.Inf(1), vs...)
	if err != nil {
		return err
	}
	clos, err := eng.Closeness(ctx, vs...)
	if err != nil {
		return err
	}
	harm, err := eng.Harmonic(ctx, vs...)
	if err != nil {
		return err
	}
	fmt.Printf("k=%d, one batch per metric, %d cached indices:\n", set.K(), eng.CachedIndices())
	for i, v := range vs {
		fmt.Printf("node %d:\n", v)
		fmt.Printf("  |N_%g|      %.1f\n", *d, sizes[i])
		fmt.Printf("  reachable   %.1f\n", reach[i])
		fmt.Printf("  closeness   %.4e\n", clos[i])
		fmt.Printf("  harmonic    %.1f\n", harm[i])
	}
	return nil
}

func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	path, directed, opts := buildFlags(fs)
	top := fs.Int("top", 10, "ranking size")
	sketchPath := fs.String("sketches", "", "load sketches from file instead of building")
	fs.Parse(args)
	g, err := loadGraph(*path, *directed)
	if err != nil {
		return err
	}
	set, err := loadOrBuild(*sketchPath, g, opts)
	if err != nil {
		return err
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		return err
	}
	ranked, err := eng.TopCloseness(context.Background(), *top)
	if err != nil {
		return err
	}
	fmt.Printf("top %d by estimated closeness:\n", *top)
	for i, r := range ranked {
		fmt.Printf("%3d. node %-8d %.4e\n", i+1, r.Node, r.Score)
	}
	return nil
}
