// adsload drives an adsserver with an open-loop query load and reports
// latency percentiles, error rates, and degraded-answer counts — the
// proving harness for the coordinator's failure semantics.
//
//	# eyeball a healthy topology
//	adsload -target http://localhost:8080 -rps 200 -duration 10s
//
//	# multi-seed run with an explicit query blend and the partial policy
//	adsload -target http://localhost:8080 -seeds 42,123,456 \
//	        -mix closeness=6,topk=2,neighborhood=2 -policy partial
//
//	# declarative fault rehearsal (workers must run -fault-inject)
//	adsload -target http://localhost:8080 -scenario deadworker.json
//
//	# CI release gate: non-zero exit when any seed violates the SLO
//	adsload -target http://localhost:8080 -gate -slo-p99 250ms \
//	        -slo-error-rate 0.001 -slo-min-done 100 -slo-max-partial 0
//
// The request stream is a pure function of (seed, mix, node count), so
// a failing run reproduces exactly.  Arrivals are open loop: a slow
// topology sees queueing and shed arrivals, not a throttled generator.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"adsketch"
	"adsketch/internal/loadgen"
	"adsketch/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// httpDoer answers the wire protocol by posting to a remote adsserver,
// as JSON or as binary frames (-proto binary).
type httpDoer struct {
	base   string
	client *http.Client
	binary bool
}

func (d *httpDoer) Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error) {
	contentType := "application/json"
	var body []byte
	var frame *wire.Buf
	if d.binary {
		frame = wire.Get()
		defer frame.Free()
		wire.EncodeRequest(frame, &req)
		body, contentType = frame.B, wire.ContentType
	} else {
		var err error
		if body, err = json.Marshal(req); err != nil {
			return adsketch.Response{}, err
		}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, d.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return adsketch.Response{}, err
	}
	hreq.Header.Set("Content-Type", contentType)
	hresp, err := d.client.Do(hreq)
	if err != nil {
		return adsketch.Response{}, err
	}
	defer hresp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return adsketch.Response{}, err
	}
	if hresp.StatusCode != http.StatusOK {
		// Failures are JSON over both protocols.
		return adsketch.Response{}, fmt.Errorf("server returned %d: %s", hresp.StatusCode, bytes.TrimSpace(payload))
	}
	if d.binary {
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			return adsketch.Response{}, fmt.Errorf("decoding response frame: %v", err)
		}
		return resp, nil
	}
	var resp adsketch.Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return adsketch.Response{}, fmt.Errorf("decoding response: %v", err)
	}
	return resp, nil
}

// inprocDoer serves a sketch set in-process, still paying the full wire
// cost on both legs — encode, decode, dispatch, encode, decode — so a
// run measures the serving path itself rather than loopback TCP.  This
// is the wire-to-wire latency mode the binary-protocol gate runs on.
type inprocDoer struct {
	eng    *adsketch.Engine
	binary bool
}

func (d *inprocDoer) Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error) {
	if d.binary {
		buf := wire.Get()
		defer buf.Free()
		wire.EncodeRequest(buf, &req)
		decoded, err := wire.DecodeRequest(buf.B)
		if err != nil {
			return adsketch.Response{}, err
		}
		resp, err := d.eng.Do(ctx, decoded)
		if err != nil {
			return adsketch.Response{}, err
		}
		wire.EncodeResponse(buf, &resp)
		return wire.DecodeResponse(buf.B)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return adsketch.Response{}, err
	}
	var decoded adsketch.Request
	if err := json.Unmarshal(body, &decoded); err != nil {
		return adsketch.Response{}, err
	}
	resp, err := d.eng.Do(ctx, decoded)
	if err != nil {
		return adsketch.Response{}, err
	}
	payload, err := json.Marshal(resp)
	if err != nil {
		return adsketch.Response{}, err
	}
	var out adsketch.Response
	if err := json.Unmarshal(payload, &out); err != nil {
		return adsketch.Response{}, err
	}
	return out, nil
}

// loadInproc builds the in-process doer off a sketch file.
func loadInproc(path string, binary bool) (*inprocDoer, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	set, err := adsketch.ReadSketchSet(f)
	if err != nil {
		return nil, 0, fmt.Errorf("reading %s: %v", path, err)
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		return nil, 0, err
	}
	return &inprocDoer{eng: eng, binary: binary}, set.NumNodes(), nil
}

// fetchNodes reads the target's global node count off /v1/meta.
func (d *httpDoer) fetchNodes(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.base+"/v1/meta", nil)
	if err != nil {
		return 0, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fetching %s/v1/meta: %w", d.base, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s/v1/meta returned %d: %s", d.base, resp.StatusCode, bytes.TrimSpace(payload))
	}
	var meta adsketch.ShardMeta
	if err := json.Unmarshal(payload, &meta); err != nil {
		return 0, fmt.Errorf("decoding /v1/meta: %v", err)
	}
	if meta.TotalNodes <= 0 {
		return 0, fmt.Errorf("%s/v1/meta reports %d nodes", d.base, meta.TotalNodes)
	}
	return meta.TotalNodes, nil
}

func parseSeeds(s string) ([]uint64, error) {
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return seeds, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "", "adsserver base URL to load (required unless -inproc)")
	inproc := fs.String("inproc", "", "serve this sketch file in-process instead of dialing -target: wire-to-wire latency mode, no TCP in the loop")
	rps := fs.Float64("rps", 200, "open-loop arrival rate, requests per second")
	duration := fs.Duration("duration", 5*time.Second, "how long to keep arriving (per seed)")
	mixFlag := fs.String("mix", "", "query blend as kind=weight,... (closeness|closeness1|topk|neighborhood|jaccard|sketch); empty = closeness=6,topk=2,neighborhood=2")
	proto := fs.String("proto", "json", "wire format for /v1/query: json or binary")
	seedsFlag := fs.String("seeds", "42", "comma-separated stream seeds; each seed is one full run")
	policy := fs.String("policy", "", "Request.Policy for every query: \"\"|fail|partial")
	dataset := fs.String("dataset", "", "catalog dataset to query (empty = the default dataset)")
	inflight := fs.Int("inflight", 512, "in-flight request cap; arrivals beyond it are shed and counted against the error rate")
	scenarioPath := fs.String("scenario", "", "declarative fault scenario JSON; overrides -rps/-mix/-policy/-duration with its phases")
	jsonOut := fs.Bool("json", false, "emit one JSON result per line instead of the human summary")
	gate := fs.Bool("gate", false, "evaluate the -slo-* thresholds and exit 1 on any violation")
	sloP99 := fs.Duration("slo-p99", 0, "gate: p99 latency ceiling (0 = unchecked)")
	sloErrRate := fs.Float64("slo-error-rate", 0.001, "gate: max failed+shed fraction of arrivals (negative = unchecked)")
	sloMinDone := fs.Int("slo-min-done", 1, "gate: completed-request floor per run")
	sloMaxPartial := fs.Int("slo-max-partial", 0, "gate: max degraded (partial) answers per run (negative = unchecked)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*target == "") == (*inproc == "") {
		fmt.Fprintln(stderr, "adsload: exactly one of -target or -inproc is required")
		fs.Usage()
		return 2
	}
	if *inproc != "" && *scenarioPath != "" {
		fmt.Fprintln(stderr, "adsload: -scenario drives fault endpoints over HTTP and needs -target")
		return 2
	}
	if *proto != "json" && *proto != "binary" {
		fmt.Fprintf(stderr, "adsload: -proto must be json or binary, got %q\n", *proto)
		return 2
	}
	seeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		fmt.Fprintf(stderr, "adsload: %v\n", err)
		return 2
	}
	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(stderr, "adsload: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var d loadgen.Doer
	var nodes int
	if *inproc != "" {
		var err error
		if d, nodes, err = loadInproc(*inproc, *proto == "binary"); err != nil {
			fmt.Fprintf(stderr, "adsload: %v\n", err)
			return 1
		}
	} else {
		h := &httpDoer{
			base:   strings.TrimSuffix(*target, "/"),
			client: &http.Client{Timeout: 60 * time.Second},
			binary: *proto == "binary",
		}
		var err error
		if nodes, err = h.fetchNodes(ctx); err != nil {
			fmt.Fprintf(stderr, "adsload: %v\n", err)
			return 1
		}
		d = h
	}

	var scenario *loadgen.Scenario
	if *scenarioPath != "" {
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintf(stderr, "adsload: %v\n", err)
			return 2
		}
		sc, err := loadgen.ParseScenario(data)
		if err != nil {
			fmt.Fprintf(stderr, "adsload: %v\n", err)
			return 2
		}
		scenario = &sc
	}

	slo := loadgen.SLO{
		MaxErrorRate: *sloErrRate,
		MaxP99:       *sloP99,
		MinDone:      *sloMinDone,
		MaxPartial:   *sloMaxPartial,
	}

	base := loadgen.Config{
		RPS: *rps, Duration: *duration, Mix: mix, Nodes: nodes,
		Policy: *policy, Dataset: *dataset, InFlight: *inflight,
	}
	violations := 0
	for _, seed := range seeds {
		var results []loadgen.Result
		var runErr error
		if scenario != nil {
			results, runErr = loadgen.RunScenario(ctx, d, *scenario, base, seed)
		} else {
			cfg := base
			cfg.Seed = seed
			var res loadgen.Result
			res, runErr = loadgen.Run(ctx, d, cfg)
			results = []loadgen.Result{res}
		}
		for _, res := range results {
			report(stdout, res, *jsonOut)
			if *gate {
				for _, v := range slo.Check(res) {
					violations++
					fmt.Fprintf(stdout, "GATE VIOLATION seed=%d %s: %s\n", res.Seed, res.Name, v)
				}
			}
		}
		if runErr != nil {
			fmt.Fprintf(stderr, "adsload: seed %d: %v\n", seed, runErr)
			return 1
		}
	}
	if *gate {
		if violations > 0 {
			fmt.Fprintf(stdout, "GATE FAIL: %d violation(s)\n", violations)
			return 1
		}
		fmt.Fprintln(stdout, "GATE PASS")
	}
	return 0
}

// report prints one run result.
func report(w io.Writer, r loadgen.Result, asJSON bool) {
	if asJSON {
		b, _ := json.Marshal(r)
		fmt.Fprintln(w, string(b))
		return
	}
	label := r.Name
	if label == "" {
		label = "run"
	}
	fmt.Fprintf(w, "%-28s seed=%-6d sent=%-6d done=%-6d errors=%-4d shed=%-4d partial=%-4d p50=%-10v p95=%-10v p99=%-10v max=%v\n",
		label, r.Seed, r.Sent, r.Done, r.Errors, r.Shed, r.Partial,
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)
}
