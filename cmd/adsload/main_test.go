package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"adsketch"
	"adsketch/internal/wire"
)

// serveEngine exposes a real engine over the two endpoints adsload
// touches, with switchable fault state — a stand-in for an adsserver
// worker without importing another main package.
func serveEngine(t *testing.T) (*httptest.Server, *atomic.Bool, *atomic.Bool) {
	t.Helper()
	g := adsketch.PreferentialAttachment(400, 3, 7)
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	var dead, degrade atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/meta", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(eng.Meta())
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"injected outage"}`))
			return
		}
		binary := r.Header.Get("Content-Type") == wire.ContentType
		var req adsketch.Request
		if binary {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			if req, err = wire.DecodeRequest(body); err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
		} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		resp, err := eng.Do(r.Context(), req)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		if degrade.Load() {
			resp.Partial = true
		}
		if binary {
			buf := wire.Get()
			defer buf.Free()
			wire.EncodeResponse(buf, &resp)
			w.Header().Set("Content-Type", wire.ContentType)
			w.Write(buf.B)
			return
		}
		json.NewEncoder(w).Encode(resp)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &dead, &degrade
}

func TestGatePassesHealthyTopology(t *testing.T) {
	ts, _, _ := serveEngine(t)
	var out, errOut bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-rps", "500", "-duration", "300ms",
		"-seeds", "42,123,456",
		"-gate", "-slo-p99", "5s", "-slo-error-rate", "0", "-slo-min-done", "10",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("healthy gate exited %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "GATE PASS") {
		t.Errorf("no GATE PASS in output:\n%s", out.String())
	}
	// Three seeds means three result lines.
	if n := strings.Count(out.String(), "seed="); n < 3 {
		t.Errorf("want >= 3 per-seed reports, got %d:\n%s", n, out.String())
	}
}

func TestGateFailsFaultedTopology(t *testing.T) {
	ts, dead, _ := serveEngine(t)
	dead.Store(true)
	var out, errOut bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-rps", "500", "-duration", "200ms",
		"-gate", "-slo-error-rate", "0.01", "-slo-min-done", "1",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("faulted gate exited %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "GATE FAIL") || !strings.Contains(out.String(), "error rate") {
		t.Errorf("violations not reported:\n%s", out.String())
	}
}

func TestGateCatchesDegradedAnswers(t *testing.T) {
	ts, _, degrade := serveEngine(t)
	degrade.Store(true)
	var out, errOut bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-rps", "500", "-duration", "200ms", "-policy", "partial",
		"-gate", "-slo-error-rate", "0", "-slo-max-partial", "0",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("degraded gate exited %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "degraded") {
		t.Errorf("partial violation not reported:\n%s", out.String())
	}
	// The same run with partials tolerated passes.
	out.Reset()
	code = run([]string{
		"-target", ts.URL, "-rps", "500", "-duration", "200ms", "-policy", "partial",
		"-gate", "-slo-error-rate", "0", "-slo-max-partial", "-1",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("tolerant gate exited %d\nstdout: %s", code, out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	ts, _, _ := serveEngine(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-target", ts.URL, "-rps", "500", "-duration", "100ms", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var res struct {
		Seed uint64 `json:"seed"`
		Done int    `json:"done"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("non-JSON output %q: %v", out.String(), err)
	}
	if res.Seed != 42 || res.Done == 0 {
		t.Errorf("result: %+v", res)
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{}, &out, &errOut); code != 2 {
		t.Errorf("missing -target exited %d", code)
	}
	if code := run([]string{"-target", "http://x", "-seeds", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("bad seeds exited %d", code)
	}
	if code := run([]string{"-target", "http://x", "-mix", "pagerank=1"}, &out, &errOut); code != 2 {
		t.Errorf("bad mix exited %d", code)
	}
	if code := run([]string{"-target", "http://x", "-proto", "grpc"}, &out, &errOut); code != 2 {
		t.Errorf("bad proto exited %d", code)
	}
}

// TestProtocolGateParity: the same healthy topology must pass the same
// gate under -proto json and -proto binary — the transport cannot
// change a gate outcome.
func TestProtocolGateParity(t *testing.T) {
	ts, _, degrade := serveEngine(t)
	gate := func(proto string, extra ...string) int {
		t.Helper()
		var out, errOut bytes.Buffer
		args := append([]string{
			"-target", ts.URL, "-rps", "500", "-duration", "200ms",
			"-proto", proto, "-mix", "closeness1=3,closeness=2,topk=1",
			"-gate", "-slo-p99", "5s", "-slo-error-rate", "0", "-slo-min-done", "10",
		}, extra...)
		code := run(args, &out, &errOut)
		if code != 0 && !strings.Contains(out.String(), "GATE") {
			t.Fatalf("-proto %s run failed outright\nstdout: %s\nstderr: %s", proto, out.String(), errOut.String())
		}
		return code
	}
	if j, b := gate("json"), gate("binary"); j != 0 || b != 0 {
		t.Errorf("healthy gate outcomes differ or fail: json %d, binary %d", j, b)
	}
	degrade.Store(true)
	if j, b := gate("json", "-policy", "partial", "-slo-max-partial", "0"),
		gate("binary", "-policy", "partial", "-slo-max-partial", "0"); j != 1 || b != 1 {
		t.Errorf("degraded gate outcomes differ: json %d, binary %d (want both 1)", j, b)
	}
}
