// adsserver loads a sketch file (any kind: uniform, weighted, or
// approximate — see adstool build -save) and serves the adsketch wire
// query protocol over HTTP.  Build the sketches once, offline; serve
// estimates forever after:
//
//	adstool gen -type ba -n 100000 -m 5 > graph.txt
//	adstool build -graph graph.txt -k 16 -seed 42 -save sketches.ads
//	adsserver -sketches sketches.ads -addr :8080
//
// Endpoints:
//
//	POST /v1/query — a single Request object, or an array of Requests
//	                 for a batch; answers with the matching Response(s).
//	GET  /healthz  — liveness: {"status":"ok"} once serving.
//	GET  /statsz   — sketch-set metadata, index-cache/shard counters,
//	                 and request counters.
//
// Example:
//
//	curl -s localhost:8080/v1/query -d '{"closeness":{"nodes":[0,17]}}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"adsketch"
)

func main() {
	fs := flag.NewFlagSet("adsserver", flag.ExitOnError)
	sketchPath := fs.String("sketches", "", "sketch file to serve (required; see adstool build -save)")
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 0, "index cache shards (0 = auto-size to GOMAXPROCS)")
	parallel := fs.Int("parallel", 0, "worker goroutines per batch query (0 = GOMAXPROCS)")
	fs.Parse(os.Args[1:])
	if *sketchPath == "" {
		fmt.Fprintln(os.Stderr, "adsserver: -sketches is required")
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*sketchPath)
	if err != nil {
		log.Fatalf("adsserver: %v", err)
	}
	set, err := adsketch.ReadSketchSet(f)
	f.Close()
	if err != nil {
		log.Fatalf("adsserver: loading %s: %v", *sketchPath, err)
	}
	eng, err := adsketch.NewEngine(set,
		adsketch.WithShards(*shards),
		adsketch.WithQueryParallelism(*parallel))
	if err != nil {
		log.Fatalf("adsserver: %v", err)
	}
	srv := newServer(eng, *sketchPath)
	log.Printf("adsserver: serving %s (%s, %d nodes, k=%d, %d entries) on %s",
		*sketchPath, srv.kind, set.NumNodes(), set.K(), set.TotalEntries(), *addr)
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.mux(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}
