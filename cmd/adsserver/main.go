// adsserver serves the adsketch wire query protocol over HTTP, for one
// sketch dataset or a whole catalog of them, in several topologies:
//
//	# single: one process, one whole sketch set
//	adstool gen -type ba -n 100000 -m 5 > graph.txt
//	adstool build -graph graph.txt -k 16 -seed 42 -save sketches.ads
//	adsserver -sketches sketches.ads -addr :8080
//
//	# partitioned, in-process: split into P shard engines behind one
//	# scatter-gather coordinator (same answers, P independent caches)
//	adsserver -sketches sketches.ads -partitions 4 -addr :8080
//
//	# distributed: one worker per partition file, plus a coordinator
//	adstool split -sketches sketches.ads -partitions 2 -out sketches
//	adsserver -sketches sketches.p0of2.ads -addr :8081 &
//	adsserver -sketches sketches.p1of2.ads -addr :8082 &
//	adsserver -workers http://localhost:8081,http://localhost:8082 -addr :8080
//
//	# multi-dataset: named datasets (one per snapshot, per k, per
//	# flavor), hot-swappable at runtime through the admin endpoints
//	adsserver -sketches today.ads -dataset yesterday=yday.ads \
//	          -dataset social-k64=social.v3.ads -mmap -addr :8080
//
// Every dataset resolves to a serving backend (-sketches and each
// -dataset load exactly as the single-file modes do); queries carry an
// optional "dataset" field naming which one answers (empty = the
// default dataset, i.e. -sketches).  POST /v1/datasets/{name} atomically
// publishes a rebuilt sketch file under a name with zero downtime:
// in-flight queries drain on the old version — whose mmap, if any, is
// unmapped only after its last reader releases — while new queries see
// the new version.
//
// A worker loading a partition file answers for the global node IDs it
// owns; the coordinator routes per-node queries by node ID, merges
// per-shard topk rankings, and evaluates cross-shard pairwise queries
// (jaccard, influence, distance_bound) from sketches fetched off the
// owning workers.  Coordinator answers are bit-for-bit identical to a
// single server over the unsplit set.
//
// Endpoints (all modes):
//
//	POST   /v1/query           — a single Request object, or an array of
//	                             Requests for a batch; answers with the
//	                             matching Response(s).
//	GET    /v1/meta            — default dataset's serving identity: node
//	                             range, partition position, sketch
//	                             parameters (what a coordinator dials).
//	GET    /v1/datasets        — catalog listing: per-dataset version,
//	                             ref counts, residency, cache stats.
//	POST   /v1/datasets/{name} — attach or hot-swap a dataset from a
//	                             server-side sketch file:
//	                             {"path": "...", "mmap": true}.
//	DELETE /v1/datasets/{name} — detach a dataset (in-flight queries
//	                             drain first).
//	POST   /v1/ingest/{name}   — with -ingest: apply a JSON edge batch
//	                             to the named streaming dataset, e.g.
//	                             {"edges":[{"u":0,"v":1}],"freeze":true};
//	                             frozen versions hot-swap into the
//	                             catalog every -freeze-every edges.
//	POST   /v1/build/{init,step,freeze}
//	                           — with -buildworker: act as one partition
//	                             of a distributed sketch construction;
//	                             the driver (adstool build -workers ...)
//	                             assigns a node range, exchanges frontier
//	                             candidates each round, and collects the
//	                             frozen partition file.
//	GET    /healthz            — liveness: {"status":"ok"} once serving.
//	GET    /statsz             — topology, default-dataset metadata,
//	                             catalog state, index-cache/shard
//	                             counters, and request counters.
//
// Example:
//
//	curl -s localhost:8080/v1/query -d '{"closeness":{"nodes":[0,17]}}'
//	curl -s localhost:8080/v1/query -d '{"dataset":"yesterday","closeness":{"nodes":[0]}}'
//	curl -s -X POST localhost:8080/v1/datasets/default -d '{"path":"rebuilt.v3.ads","mmap":true}'
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight queries, then closes the catalog (releasing every mapped
// sketch file).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adsketch"
	"adsketch/internal/distbuild"
)

// datasetFlags collects repeatable -dataset name=path mappings.
type datasetFlags []string

func (d *datasetFlags) String() string { return strings.Join(*d, ",") }

func (d *datasetFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*d = append(*d, v)
	return nil
}

func main() {
	fs := flag.NewFlagSet("adsserver", flag.ExitOnError)
	sketchPath := fs.String("sketches", "", "sketch file served as the default dataset: a whole set or one partition (see adstool build -save / adstool split)")
	workers := fs.String("workers", "", "comma-separated worker base URLs to coordinate as the default dataset (instead of -sketches); join replicas of one partition with '|', e.g. http://a:8081|http://b:8081,http://a:8082")
	partitions := fs.Int("partitions", 0, "split -sketches into this many in-process shards behind a coordinator (0 = serve unsplit)")
	var datasets datasetFlags
	fs.Var(&datasets, "dataset", "additional named dataset as name=path (repeatable); query with {\"dataset\":\"name\", ...}")
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 0, "index cache shards per engine (0 = auto-size to GOMAXPROCS)")
	parallel := fs.Int("parallel", 0, "worker goroutines per batch query (0 = GOMAXPROCS)")
	useMmap := fs.Bool("mmap", false, "mmap sketch files instead of decoding them (near-zero startup; wants v3 columnar files, see adstool convert)")
	memBudget := fs.Int64("mem-budget", 0, "resident-memory budget in bytes for the catalog; idle file-backed datasets are evicted LRU and reload on demand (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries after SIGINT/SIGTERM")
	ingestOn := fs.Bool("ingest", false, "enable POST /v1/ingest/{dataset}: accept edge batches, maintain sketches incrementally, publish frozen versions into the catalog")
	freezeEvery := fs.Int("freeze-every", 1024, "freeze and publish an ingest dataset after this many edges (0 = only on explicit \"freeze\":true)")
	ingestK := fs.Int("ingest-k", 16, "bottom-k parameter of ingest-created datasets")
	ingestSeed := fs.Uint64("ingest-seed", 42, "rank seed of ingest-created datasets")
	ingestDirected := fs.Bool("ingest-directed", false, "treat ingested edges as directed arcs (default: undirected edges)")
	ingestDir := fs.String("ingest-dir", "", "persist each frozen ingest version as a v3 file under this directory and serve from it (with -mmap, via mmap); empty = publish in memory")
	ccfg := clusterDefaults()
	fs.DurationVar(&ccfg.dialTimeout, "dial-timeout", ccfg.dialTimeout, "per-attempt budget for fetching a worker's /v1/meta at startup")
	fs.IntVar(&ccfg.dialRetries, "dial-retries", ccfg.dialRetries, "extra dial attempts per worker before giving up")
	fs.DurationVar(&ccfg.shardTimeout, "shard-timeout", ccfg.shardTimeout, "per-attempt deadline the coordinator puts on each worker call (0 = none)")
	fs.IntVar(&ccfg.shardRetries, "shard-retries", ccfg.shardRetries, "extra retry rounds through a partition's replica chain on transient errors")
	fs.DurationVar(&ccfg.retryBackoff, "retry-backoff", ccfg.retryBackoff, "delay before the first shard retry (doubles per attempt, capped at 1s)")
	fs.DurationVar(&ccfg.hedgeDelay, "hedge-delay", ccfg.hedgeDelay, "send a hedged request to a partition replica after this wait (0 = off; needs '|' replicas in -workers)")
	fs.DurationVar(&ccfg.probeInterval, "probe-interval", ccfg.probeInterval, "poll every worker's /healthz on this interval, ejecting dead workers from rotation (0 = off)")
	fs.StringVar(&ccfg.workerProto, "worker-proto", ccfg.workerProto, "wire format for worker calls: auto (binary frames when the worker advertises them) or json (force the fallback)")
	faultInject := fs.Bool("fault-inject", false, "expose POST /debugz/fault to inject latency or unavailability into this server (load-testing only; never enable in production)")
	buildWorker := fs.Bool("buildworker", false, "enable the distributed-build worker endpoints POST /v1/build/{init,step,freeze}; a build driver (adstool build -workers ...) configures this process with its partition of an edge list and drives the construction rounds")
	fs.Parse(os.Args[1:])
	if ccfg.workerProto != "auto" && ccfg.workerProto != "json" {
		fmt.Fprintln(os.Stderr, "adsserver: -worker-proto must be auto or json")
		os.Exit(2)
	}
	if *sketchPath == "" && *workers == "" && len(datasets) == 0 && !*ingestOn && !*buildWorker {
		fmt.Fprintln(os.Stderr, "adsserver: at least one of -sketches, -workers, -dataset, -ingest, or -buildworker is required")
		fs.Usage()
		os.Exit(2)
	}
	if !*ingestOn && (*ingestDir != "" || *freezeEvery != 1024 || *ingestK != 16 || *ingestSeed != 42 || *ingestDirected) {
		fmt.Fprintln(os.Stderr, "adsserver: -freeze-every/-ingest-k/-ingest-seed/-ingest-directed/-ingest-dir require -ingest")
		os.Exit(2)
	}
	if *ingestOn && (*freezeEvery < 0 || *ingestK < 2) {
		fmt.Fprintln(os.Stderr, "adsserver: want -freeze-every >= 0 and -ingest-k >= 2")
		os.Exit(2)
	}
	if *sketchPath != "" && *workers != "" {
		fmt.Fprintln(os.Stderr, "adsserver: -sketches and -workers both name the default dataset; use at most one")
		os.Exit(2)
	}
	if *partitions != 0 && *sketchPath == "" {
		fmt.Fprintln(os.Stderr, "adsserver: -partitions splits the -sketches file; it applies to neither -workers nor -dataset entries")
		os.Exit(2)
	}
	if *partitions < 0 {
		fmt.Fprintf(os.Stderr, "adsserver: -partitions %d is invalid; want >= 1 (or 0 to serve unsplit)\n", *partitions)
		os.Exit(2)
	}
	if *useMmap && *sketchPath == "" && len(datasets) == 0 && *ingestDir == "" {
		fmt.Fprintln(os.Stderr, "adsserver: -mmap applies to local sketch files (-sketches / -dataset / -ingest-dir), not to -workers")
		os.Exit(2)
	}
	if ccfg.dialTimeout < 0 || ccfg.dialRetries < 0 || ccfg.probeInterval < 0 {
		fmt.Fprintln(os.Stderr, "adsserver: -dial-timeout, -dial-retries, and -probe-interval must be >= 0")
		os.Exit(2)
	}
	if *workers == "" && (ccfg.hedgeDelay != 0 || ccfg.probeInterval != 0) {
		fmt.Fprintln(os.Stderr, "adsserver: -hedge-delay and -probe-interval apply to the -workers topology")
		os.Exit(2)
	}

	cat, pr, err := buildCatalog(*sketchPath, *workers, *partitions, *useMmap, datasets, *memBudget, ccfg,
		adsketch.WithShards(*shards), adsketch.WithQueryParallelism(*parallel))
	if err != nil {
		log.Fatalf("adsserver: %v", err)
	}
	if pr != nil {
		defer pr.halt()
		log.Printf("adsserver: health-probing %d worker(s) every %v", len(pr.shards), ccfg.probeInterval)
	}

	srv := newServer(cat)
	srv.prober = pr
	if *faultInject {
		srv.faultInject = true
		log.Printf("adsserver: fault injection enabled at POST /debugz/fault")
	}
	if *buildWorker {
		srv.build = distbuild.NewWorkerHandler()
		log.Printf("adsserver: distributed-build worker endpoints enabled at POST /v1/build/{init,step,freeze}")
	}
	if *ingestOn {
		srv.ing = newIngestManager(cat, ingestConfig{
			freezeEvery: *freezeEvery,
			k:           *ingestK,
			seed:        *ingestSeed,
			directed:    *ingestDirected,
			dir:         *ingestDir,
			mmap:        *useMmap,
		})
		log.Printf("adsserver: streaming ingest enabled (k=%d seed=%d directed=%v freeze-every=%d dir=%q)",
			*ingestK, *ingestSeed, *ingestDirected, *freezeEvery, *ingestDir)
	}
	cst := cat.Stats()
	if def := defaultDataset(&cst); def != nil && def.Meta != nil {
		log.Printf("adsserver: default dataset serves %s sketches (%s mode, nodes [%d, %d) of %d, k=%d)",
			def.Meta.Kind, def.Mode, def.Meta.Lo, def.Meta.Hi, def.Meta.TotalNodes, def.Meta.K)
	}
	log.Printf("adsserver: catalog holds %d dataset(s) %v on %s", len(cat.Datasets()), cat.Datasets(), *addr)

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.mux(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("adsserver: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("adsserver: signal received; draining in-flight queries (up to %v)", *drainTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("adsserver: shutdown: %v", err)
		}
		// With the listener closed and handlers drained, detaching every
		// dataset releases the backing sketch files (unmapping any mmap
		// regions) through the catalog's ref-counted handles.
		if err := cat.Close(); err != nil {
			log.Printf("adsserver: closing catalog: %v", err)
		}
		log.Printf("adsserver: shutdown complete")
	}
}

// buildCatalog assembles the serving catalog: the default dataset from
// -sketches (optionally partitioned, optionally mmap'd) or -workers, and
// one named dataset per -dataset name=path.  The returned prober is
// non-nil only for a -workers topology with -probe-interval set.
func buildCatalog(sketchPath, workers string, partitions int, useMmap bool, datasets []string,
	memBudget int64, ccfg clusterConfig, engOpts ...adsketch.EngineOption) (*adsketch.Catalog, *prober, error) {
	cat, err := adsketch.NewCatalog(
		adsketch.WithMemoryBudget(memBudget),
		adsketch.WithEngineOptions(engOpts...),
	)
	if err != nil {
		return nil, nil, err
	}
	if sketchPath != "" {
		src := fileSource(sketchPath, useMmap)
		if partitions > 1 {
			src = src.WithPartitions(partitions)
		}
		if err := cat.Attach(adsketch.DefaultDataset, src); err != nil {
			return nil, nil, err
		}
	}
	var pr *prober
	if workers != "" {
		be, workerProber, err := dialWorkers(strings.Split(workers, ","), ccfg)
		if err != nil {
			return nil, nil, err
		}
		if err := cat.Attach(adsketch.DefaultDataset, adsketch.BackendSource(be)); err != nil {
			return nil, nil, err
		}
		pr = workerProber
	}
	for _, spec := range datasets {
		name, path, _ := strings.Cut(spec, "=")
		if err := cat.Attach(name, fileSource(path, useMmap)); err != nil {
			return nil, nil, fmt.Errorf("dataset %q: %w", name, err)
		}
	}
	return cat, pr, nil
}

// fileSource picks the load strategy for a sketch file path.
func fileSource(path string, useMmap bool) adsketch.Source {
	if useMmap {
		return adsketch.MmapSource(path)
	}
	return adsketch.FileSource(path)
}

// dialWorkers connects to every worker and assembles the coordinator.
// Each comma-separated element names one partition; '|' inside an
// element joins the partition's replicas (first URL is the primary).
// With cfg.probeInterval set, every worker is health-probed and dead
// ones are ejected from rotation until they answer /healthz again.
func dialWorkers(specs []string, cfg clusterConfig) (adsketch.ShardBackend, *prober, error) {
	groups := make([][]adsketch.ShardBackend, 0, len(specs))
	var probed []*probedShard
	for _, spec := range specs {
		var group []adsketch.ShardBackend
		for _, u := range strings.Split(spec, "|") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			s, err := dialShard(u, cfg)
			if err != nil {
				return nil, nil, err
			}
			role := "replica"
			if len(group) == 0 {
				role = "primary"
			}
			log.Printf("adsserver: worker %s serves partition %d/%d (nodes [%d, %d) of %d, %s)",
				u, s.meta.Index, s.meta.Count, s.meta.Lo, s.meta.Hi, s.meta.TotalNodes, role)
			p := newProbedShard(s)
			probed = append(probed, p)
			group = append(group, p)
		}
		if len(group) > 0 {
			groups = append(groups, group)
		}
	}
	be, err := adsketch.NewReplicatedCoordinator(groups, cfg.coordinatorOptions()...)
	if err != nil {
		return nil, nil, err
	}
	var pr *prober
	if cfg.probeInterval > 0 {
		pr = startProber(probed, cfg.probeInterval)
	}
	return be, pr, nil
}
