// adsserver serves the adsketch wire query protocol over HTTP, in three
// topologies:
//
//	# single: one process, one whole sketch set
//	adstool gen -type ba -n 100000 -m 5 > graph.txt
//	adstool build -graph graph.txt -k 16 -seed 42 -save sketches.ads
//	adsserver -sketches sketches.ads -addr :8080
//
//	# partitioned, in-process: split into P shard engines behind one
//	# scatter-gather coordinator (same answers, P independent caches)
//	adsserver -sketches sketches.ads -partitions 4 -addr :8080
//
//	# distributed: one worker per partition file, plus a coordinator
//	adstool split -sketches sketches.ads -partitions 2 -out sketches
//	adsserver -sketches sketches.p0of2.ads -addr :8081 &
//	adsserver -sketches sketches.p1of2.ads -addr :8082 &
//	adsserver -workers http://localhost:8081,http://localhost:8082 -addr :8080
//
// A worker loading a partition file answers for the global node IDs it
// owns; the coordinator routes per-node queries by node ID, merges
// per-shard topk rankings, and evaluates cross-shard pairwise queries
// (jaccard, influence, distance_bound) from sketches fetched off the
// owning workers.  Coordinator answers are bit-for-bit identical to a
// single server over the unsplit set.
//
// Endpoints (all modes):
//
//	POST /v1/query — a single Request object, or an array of Requests
//	                 for a batch; answers with the matching Response(s).
//	GET  /v1/meta  — serving identity: node range, partition position,
//	                 sketch parameters (what a coordinator dials).
//	GET  /healthz  — liveness: {"status":"ok"} once serving.
//	GET  /statsz   — topology, sketch-set metadata, index-cache/shard
//	                 counters, and request counters.
//
// Example:
//
//	curl -s localhost:8080/v1/query -d '{"closeness":{"nodes":[0,17]}}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"adsketch"
)

func main() {
	fs := flag.NewFlagSet("adsserver", flag.ExitOnError)
	sketchPath := fs.String("sketches", "", "sketch file to serve: a whole set or one partition (see adstool build -save / adstool split)")
	workers := fs.String("workers", "", "comma-separated worker base URLs to coordinate (instead of -sketches)")
	partitions := fs.Int("partitions", 0, "split -sketches into this many in-process shards behind a coordinator (0 = serve unsplit)")
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 0, "index cache shards per engine (0 = auto-size to GOMAXPROCS)")
	parallel := fs.Int("parallel", 0, "worker goroutines per batch query (0 = GOMAXPROCS)")
	useMmap := fs.Bool("mmap", false, "mmap -sketches instead of decoding it (near-zero startup; wants a v3 columnar file, see adstool convert)")
	fs.Parse(os.Args[1:])
	if (*sketchPath == "") == (*workers == "") {
		fmt.Fprintln(os.Stderr, "adsserver: exactly one of -sketches or -workers is required")
		fs.Usage()
		os.Exit(2)
	}
	if *workers != "" && *partitions != 0 {
		fmt.Fprintln(os.Stderr, "adsserver: -partitions splits a local sketch file; it does not apply to -workers")
		os.Exit(2)
	}
	if *partitions < 0 {
		fmt.Fprintf(os.Stderr, "adsserver: -partitions %d is invalid; want >= 1 (or 0 to serve unsplit)\n", *partitions)
		os.Exit(2)
	}

	var (
		be   backend
		mode string
		info loadInfo
		err  error
	)
	if *workers != "" {
		if *useMmap {
			fmt.Fprintln(os.Stderr, "adsserver: -mmap applies to a local -sketches file, not to -workers")
			os.Exit(2)
		}
		be, err = dialWorkers(strings.Split(*workers, ","))
		mode = "coordinator"
	} else {
		be, mode, info, err = loadLocal(*sketchPath, *partitions, *useMmap,
			adsketch.WithShards(*shards), adsketch.WithQueryParallelism(*parallel))
	}
	if err != nil {
		log.Fatalf("adsserver: %v", err)
	}

	srv := newServer(be, mode, *sketchPath)
	srv.setFileInfo(info.version, info.mapped)
	meta := be.Meta()
	log.Printf("adsserver: serving %s sketches (%s mode, nodes [%d, %d) of %d, k=%d) on %s",
		meta.Kind, mode, meta.Lo, meta.Hi, meta.TotalNodes, meta.K, *addr)
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.mux(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}

// loadInfo records how a local sketch file was loaded, for /statsz.
type loadInfo struct {
	version int  // codec version of the file
	mapped  bool // columns view an mmap region
}

// loadLocal builds the backend for a local sketch file: a shard engine
// for a partition file, a coordinator over split shard engines when
// -partitions is set, or a plain whole-set engine.  With useMmap the
// file's columns are mapped instead of decoded (v3 files; other versions
// fall back to decoding), so a worker serving a prebuilt shard starts in
// near-constant time; the mapping is held for the process lifetime.
func loadLocal(path string, partitions int, useMmap bool, opts ...adsketch.EngineOption) (backend, string, loadInfo, error) {
	open := adsketch.OpenSketchFile
	if useMmap {
		open = adsketch.MmapSketchFile
	}
	sf, err := open(path)
	if err != nil {
		return nil, "", loadInfo{}, fmt.Errorf("loading %s: %v", path, err)
	}
	info := loadInfo{version: sf.Version(), mapped: sf.Mapped()}
	if useMmap {
		log.Printf("adsserver: %s (format v%d) opened with mmap=%v", path, sf.Version(), sf.Mapped())
	}
	var set adsketch.SketchSet
	if s := sf.Set(); s != nil {
		set = s
	}
	part := sf.Partition()
	if part != nil {
		if partitions != 0 {
			return nil, "", info, fmt.Errorf("%s already holds partition %d/%d; -partitions only splits whole sets", path, part.Index(), part.Count())
		}
		eng, err := adsketch.NewShardEngine(part, opts...)
		if err != nil {
			return nil, "", info, err
		}
		return eng, "shard", info, nil
	}
	if partitions > 1 {
		coord, err := adsketch.NewPartitionedEngine(set, partitions, opts...)
		if err != nil {
			return nil, "", info, err
		}
		return coord, "coordinator", info, nil
	}
	eng, err := adsketch.NewEngine(set, opts...)
	if err != nil {
		return nil, "", info, err
	}
	return eng, "single", info, nil
}

// dialWorkers connects to every worker and assembles the coordinator.
func dialWorkers(urls []string) (backend, error) {
	backends := make([]adsketch.ShardBackend, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		s, err := dialShard(u)
		if err != nil {
			return nil, err
		}
		log.Printf("adsserver: worker %s serves partition %d/%d (nodes [%d, %d) of %d)",
			u, s.meta.Index, s.meta.Count, s.meta.Lo, s.meta.Hi, s.meta.TotalNodes)
		backends = append(backends, s)
	}
	return adsketch.NewCoordinator(backends)
}
