package main

// End-to-end tests of the streaming-ingest tier: POST /v1/ingest edge
// batches maintain a dataset incrementally and publish frozen versions
// through the catalog, and — the acceptance scenario — continuous query
// load across many ingest publishes sees zero failed requests and only
// published (never partial) state.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"adsketch"
)

// ingestServer serves a fresh empty catalog with the ingest tier enabled.
func ingestServer(t *testing.T, cfg ingestConfig) (*httptest.Server, *adsketch.Catalog) {
	t.Helper()
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(cat)
	srv.ing = newIngestManager(cat, cfg)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { cat.Close() })
	return ts, cat
}

// postIngest POSTs a raw body to /v1/ingest/{dataset} and decodes the
// result, failing on any non-200.
func postIngest(t *testing.T, baseURL, dataset string, body string) ingestResult {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/ingest/"+dataset, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/ingest/%s: status %d: %s", dataset, resp.StatusCode, payload)
	}
	var res ingestResult
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIngestEndpoint(t *testing.T) {
	ts, _ := ingestServer(t, ingestConfig{freezeEvery: 4, k: 8, seed: 42})

	// Object form, below the freeze threshold: accepted but not yet
	// published — querying the dataset still 404s.
	res := postIngest(t, ts.URL, "live", `{"edges":[{"u":0,"v":1},{"u":1,"v":2}]}`)
	if res.Accepted != 2 || res.Pending != 2 || res.Freezes != 0 || res.Version != 0 {
		t.Fatalf("first batch: %+v", res)
	}
	q, err := http.Post(ts.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"dataset":"live","closeness":{"nodes":[0]}}`)))
	if err != nil {
		t.Fatal(err)
	}
	q.Body.Close()
	if q.StatusCode != http.StatusNotFound {
		t.Fatalf("query before first publish: status %d, want 404", q.StatusCode)
	}

	// Bare-array form crossing the threshold: freeze #1 publishes.
	res = postIngest(t, ts.URL, "live", `[{"u":2,"v":3},{"u":3,"v":4,"w":2.5}]`)
	if res.Accepted != 2 || res.Pending != 0 || res.Freezes != 1 || res.Version != 1 {
		t.Fatalf("threshold batch: %+v", res)
	}

	// Explicit freeze publishes version 2 even with one pending edge.
	res = postIngest(t, ts.URL, "live", `{"edges":[{"u":4,"v":0}],"freeze":true}`)
	if res.Pending != 0 || res.Freezes != 2 || res.Version != 2 {
		t.Fatalf("explicit freeze: %+v", res)
	}

	// The published dataset answers queries now.
	q, err = http.Post(ts.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"dataset":"live","neighborhood":{"unbounded":true,"nodes":[0]}}`)))
	if err != nil {
		t.Fatal(err)
	}
	var qr adsketch.Response
	if err := json.NewDecoder(q.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	q.Body.Close()
	if q.StatusCode != http.StatusOK || qr.Error != "" {
		t.Fatalf("query after publish: status %d, error %q", q.StatusCode, qr.Error)
	}
	// 5 nodes in one connected component: the k=8 sketch is exact.
	if len(qr.Scores) != 1 || qr.Scores[0] != 5 {
		t.Fatalf("reachability estimate %v, want [5]", qr.Scores)
	}

	// Bad batches are the caller's mistake.
	for _, bad := range []string{`{"edges":[{"u":-1,"v":2}]}`, `{"edges":[{"u":0,"v":1,"w":-3}]}`, `not json`} {
		resp, err := http.Post(ts.URL+"/v1/ingest/live", "application/json", bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/ingest/bad%20name", "application/json", bytes.NewReader([]byte(`[]`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dataset name: status %d, want 400", resp.StatusCode)
	}

	// /statsz reports the ingest tier: lag, counters, last version.
	sresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st statszBody
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.IngestedEdges != 5 || len(st.Ingest) != 1 {
		t.Fatalf("statsz ingest section: edges=%d datasets=%d", st.IngestedEdges, len(st.Ingest))
	}
	ist := st.Ingest[0]
	if ist.Dataset != "live" || ist.Freezes != 2 || ist.LastVersion != 2 ||
		ist.PendingEdges != 0 || ist.PublishLagSeconds < 0 || ist.Maintainer.Edges != 5 {
		t.Fatalf("statsz ingest stats: %+v", ist)
	}
}

// TestIngestDisabled: without -ingest the endpoint is not registered.
func TestIngestDisabled(t *testing.T) {
	dir := t.TempDir()
	path, _ := buildV3File(t, dir, "a.v3.ads", 42)
	ts, _ := catalogServer(t, adsketch.FileSource(path))
	resp, err := http.Post(ts.URL+"/v1/ingest/live", "application/json", bytes.NewReader([]byte(`[]`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest on a non-ingest server: status %d, want 404", resp.StatusCode)
	}
}

// ingestPrefixEstimate computes the reachability estimate a published
// version frozen after the first n stream edges must serve for the probe
// node: a full Build of the prefix graph (nodes up to the largest ID
// seen, exactly how the ingestor grows) — published versions are
// bit-for-bit rebuilds, so the served score must equal one of these.
func ingestPrefixEstimate(t *testing.T, edges []adsketch.Edge, n int, k int, seed uint64, probe int32) float64 {
	t.Helper()
	maxID := int32(-1)
	for _, e := range edges[:n] {
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
	}
	b := adsketch.NewGraphBuilder(int(maxID)+1, false)
	for _, e := range edges[:n] {
		b.AddEdge(e.U, e.V)
	}
	set, err := adsketch.Build(b.Build(), adsketch.WithK(k), adsketch.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Do(context.Background(), adsketch.Request{
		Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: []int32{probe}},
	})
	if err != nil || resp.Error != "" {
		t.Fatalf("prefix %d: %v %q", n, err, resp.Error)
	}
	return resp.Scores[0]
}

// TestIngestPublishZeroDowntime is the acceptance scenario: continuous
// query load on an ingest dataset while edge batches stream in and
// trigger many freeze-and-publish cycles.  Requirements: zero failed
// requests, every served answer equals a published checkpoint (a full
// rebuild of some frozen stream prefix — never partial delta state), and
// the final version matches a full rebuild of everything ingested.
func TestIngestPublishZeroDowntime(t *testing.T) {
	const (
		nodes       = 300
		totalEdges  = 900
		batchSize   = 30
		freezeEvery = 60
		k           = 8
		seed        = 42
	)
	ts, _ := ingestServer(t, ingestConfig{freezeEvery: freezeEvery, k: k, seed: seed})

	src, err := adsketch.NewRandomEdgeSource(nodes, totalEdges, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	var edges []adsketch.Edge
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		edges = append(edges, e)
	}
	// Probe a node present from the very first batch: version 1 already
	// answers for it, so the query load runs failure-free from the start.
	probe := edges[0].U

	// The freeze schedule: version 1 is the explicit freeze after the
	// first batch (30 edges), automatic freezes fire every 60 edges after
	// (90, 150, ..., 870), and the final batch freezes explicitly at 900.
	// Every answer the load observes must equal one of these checkpoints.
	freezePoints := []int{batchSize}
	for at := batchSize + freezeEvery; at < totalEdges; at += freezeEvery {
		freezePoints = append(freezePoints, at)
	}
	freezePoints = append(freezePoints, totalEdges)
	valid := make(map[float64]int, len(freezePoints))
	for _, n := range freezePoints {
		valid[ingestPrefixEstimate(t, edges, n, k, seed, probe)] = n
	}

	first, err := json.Marshal(map[string]any{"edges": wireEdges(edges[:batchSize]), "freeze": true})
	if err != nil {
		t.Fatal(err)
	}
	postIngest(t, ts.URL, "live", string(first))

	var (
		stop     atomic.Bool
		queries  atomic.Int64
		failures atomic.Int64
		badScore atomic.Int64
	)
	var wg sync.WaitGroup
	queryBody, err := json.Marshal(adsketch.Request{
		Dataset:      "live",
		Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: []int32{probe}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(queryBody))
				if err != nil {
					failures.Add(1)
					continue
				}
				var qr adsketch.Response
				decErr := json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				queries.Add(1)
				if decErr != nil || resp.StatusCode != http.StatusOK || qr.Error != "" || len(qr.Scores) != 1 {
					failures.Add(1)
					continue
				}
				if _, ok := valid[qr.Scores[0]]; !ok {
					badScore.Add(1)
				}
			}
		}()
	}

	var lastRes ingestResult
	for at := batchSize; at < totalEdges; at += batchSize {
		end := at + batchSize
		if end > totalEdges {
			end = totalEdges
		}
		payload, err := json.Marshal(map[string]any{"edges": wireEdges(edges[at:end]), "freeze": end == totalEdges})
		if err != nil {
			t.Fatal(err)
		}
		lastRes = postIngest(t, ts.URL, "live", string(payload))
	}
	stop.Store(true)
	wg.Wait()

	if int(lastRes.Freezes) != len(freezePoints) {
		t.Fatalf("%d publishes, expected %d — the checkpoint schedule drifted", lastRes.Freezes, len(freezePoints))
	}
	if got := failures.Load(); got != 0 {
		t.Fatalf("%d failed requests out of %d during %d publishes", got, queries.Load(), lastRes.Freezes)
	}
	if got := badScore.Load(); got != 0 {
		t.Fatalf("%d answers out of %d matched no published checkpoint (partial state served?)", got, queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("query load never ran")
	}
	t.Logf("%d queries, 0 failures, every answer a published checkpoint, %d publishes (final version %d)",
		queries.Load(), lastRes.Freezes, lastRes.Version)
}

// wireEdges converts edges to the wire shape of the ingest endpoint.
func wireEdges(edges []adsketch.Edge) []wireEdge {
	out := make([]wireEdge, len(edges))
	for i, e := range edges {
		out[i] = wireEdge{U: e.U, V: e.V, W: e.W}
	}
	return out
}
