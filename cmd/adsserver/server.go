package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"adsketch"
)

// maxBodyBytes bounds one request body; a batch of a few thousand
// queries fits comfortably.
const maxBodyBytes = 16 << 20

// backend is what the HTTP layer serves: a single-set Engine, a shard
// Engine over one partition, or a Coordinator over many shards — all
// answer the same protocol and identify themselves through Meta.
type backend interface {
	Meta() adsketch.ShardMeta
	Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error)
	DoBatch(ctx context.Context, reqs []adsketch.Request) ([]adsketch.Response, error)
}

// cacheStatser is the optional backend face for index-cache counters
// (both Engine and Coordinator provide it; a future backend might not).
type cacheStatser interface {
	CacheStats() adsketch.CacheStats
}

// setInfo is the optional backend face for sketch-set payload counters.
type setInfo interface {
	Set() adsketch.SketchSet
}

// server is the HTTP face of one serving backend.  It is deliberately
// thin: all query semantics live in the adsketch protocol layer, so the
// handler only decodes, dispatches, encodes, and counts.
type server struct {
	be         backend
	mode       string // "single", "shard", or "coordinator"
	sketchPath string
	start      time.Time
	shardMetas []adsketch.ShardMeta // coordinator mode: per-shard metadata

	fileVersion int  // codec version of the loaded sketch file (0 when not file-backed)
	mmapped     bool // columns view an mmap region

	queries  atomic.Int64 // protocol requests evaluated (batch items count individually)
	batches  atomic.Int64 // POST /v1/query calls
	failures atomic.Int64 // requests answered with an error
}

func newServer(be backend, mode, sketchPath string) *server {
	s := &server{be: be, mode: mode, sketchPath: sketchPath, start: time.Now()}
	if c, ok := be.(*adsketch.Coordinator); ok {
		s.shardMetas = c.ShardMetas()
	}
	return s
}

// setFileInfo records how the sketch file was loaded, for /statsz.
func (s *server) setFileInfo(version int, mmapped bool) {
	s.fileVersion = version
	s.mmapped = mmapped
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/meta", s.handleMeta)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before writing the header, so an unencodable payload (e.g.
	// a non-finite score from degenerate sketch data) surfaces as a 500
	// instead of a silent empty 200.
	payload, err := json.Marshal(v)
	if err != nil {
		log.Printf("adsserver: encoding response: %v", err)
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(payload, '\n')); err != nil {
		log.Printf("adsserver: writing response: %v", err)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

// statusFor maps protocol errors to HTTP statuses: client mistakes are
// 400, queries this sketch set cannot answer are 422, the rest is 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, adsketch.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, adsketch.ErrUnsupportedQuery):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleQuery serves POST /v1/query.  The body is either one Request
// object (answered with one Response) or a JSON array of Requests
// (answered with an array of Responses in the same order; per-request
// failures are reported in Response.Error without failing the batch).
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.batches.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.failures.Add(1)
		status := http.StatusBadRequest
		if errors.As(err, new(*http.MaxBytesError)) {
			status = http.StatusRequestEntityTooLarge // split the batch
		}
		writeJSON(w, status, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []adsketch.Request
		if err := json.Unmarshal(body, &reqs); err != nil {
			s.failures.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request batch: " + err.Error()})
			return
		}
		s.queries.Add(int64(len(reqs)))
		resps, err := s.be.DoBatch(r.Context(), reqs)
		if err != nil {
			s.failures.Add(1)
			writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
			return
		}
		for i := range resps {
			if resps[i].Error != "" {
				s.failures.Add(1)
			}
		}
		writeJSON(w, http.StatusOK, resps)
		return
	}
	var req adsketch.Request
	if err := json.Unmarshal(body, &req); err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: " + err.Error()})
		return
	}
	s.queries.Add(1)
	resp, err := s.be.Do(r.Context(), req)
	if err != nil {
		s.failures.Add(1)
		writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMeta serves GET /v1/meta: the backend's serving identity — node
// range, partition position, sketch parameters.  A coordinator building
// its routing table reads this from every worker at startup.
func (s *server) handleMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.be.Meta())
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statszBody is the /statsz payload: what is being served, how the
// index caches are doing, and how much traffic has been answered.
type statszBody struct {
	Mode          string               `json:"mode"` // single | shard | coordinator
	Sketches      string               `json:"sketches,omitempty"`
	Kind          string               `json:"kind"`
	FormatVersion int                  `json:"format_version"`
	FileVersion   int                  `json:"file_version,omitempty"` // codec version of the loaded file
	Mmap          bool                 `json:"mmap,omitempty"`         // columns served from an mmap region
	Nodes         int                  `json:"nodes"`                  // global node count
	K             int                  `json:"k"`
	UptimeSeconds float64              `json:"uptime_seconds"`
	Shard         *adsketch.ShardMeta  `json:"shard,omitempty"`  // shard mode: what this worker owns
	Shards        []adsketch.ShardMeta `json:"shards,omitempty"` // coordinator mode: the routing table
	LocalNodes    int                  `json:"local_nodes,omitempty"`
	TotalEntries  int                  `json:"total_entries,omitempty"`

	Cache adsketch.CacheStats `json:"cache"`

	Batches  int64 `json:"batches"`
	Queries  int64 `json:"queries"`
	Failures int64 `json:"failures"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	meta := s.be.Meta()
	body := statszBody{
		Mode:          s.mode,
		Sketches:      s.sketchPath,
		Kind:          meta.Kind,
		FormatVersion: adsketch.SketchFormatVersion,
		FileVersion:   s.fileVersion,
		Mmap:          s.mmapped,
		Nodes:         meta.TotalNodes,
		K:             meta.K,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Batches:       s.batches.Load(),
		Queries:       s.queries.Load(),
		Failures:      s.failures.Load(),
	}
	if c, ok := s.be.(cacheStatser); ok {
		body.Cache = c.CacheStats()
	}
	switch s.mode {
	case "shard":
		m := meta
		body.Shard = &m
	case "coordinator":
		body.Shards = s.shardMetas
	}
	if si, ok := s.be.(setInfo); ok {
		set := si.Set()
		body.LocalNodes = set.NumNodes()
		body.TotalEntries = set.TotalEntries()
	}
	writeJSON(w, http.StatusOK, body)
}
