package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"adsketch"
	"adsketch/internal/distbuild"
	"adsketch/internal/wire"
)

// maxBodyBytes bounds one request body; a batch of a few thousand
// queries fits comfortably.
const maxBodyBytes = 16 << 20

// protoHeader is the response header /v1/meta uses to advertise the
// transports this server speaks on /v1/query.  A coordinator dialing a
// worker switches to the binary framing when the advertisement names it;
// old workers never send the header, so negotiation degrades to JSON.
const protoHeader = "Ads-Protocols"

// advertisedProtocols lists the /v1/query content types this build
// accepts, preferred first.
const advertisedProtocols = wire.ContentType + ", application/json"

// isBinaryContentType reports whether a request body is the binary wire
// framing (parameters like charset are ignored; anything else — JSON,
// empty, malformed — takes the JSON path, keeping curl the easy case).
func isBinaryContentType(ct string) bool {
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == wire.ContentType
}

// cacheStatser is the optional backend face for index-cache counters
// (both Engine and Coordinator provide it; a future backend might not).
type cacheStatser interface {
	CacheStats() adsketch.CacheStats
}

// setInfo is the optional backend face for sketch-set payload counters.
type setInfo interface {
	Set() adsketch.SketchSet
}

// server is the HTTP face of a dataset catalog.  It is deliberately
// thin: query semantics live in the adsketch protocol layer and dataset
// lifecycle in the Catalog, so the handlers only decode, dispatch,
// encode, and count.  Queries route by Request.Dataset (empty = the
// catalog's default dataset); the admin endpoints attach, swap, and
// detach datasets from server-side paths while traffic is live.
type server struct {
	cat    *adsketch.Catalog
	ing    *ingestManager           // nil unless -ingest
	prober *prober                  // nil unless -workers with -probe-interval
	build  *distbuild.WorkerHandler // nil unless -buildworker
	start  time.Time

	queries  atomic.Int64 // protocol requests evaluated (batch items count individually)
	batches  atomic.Int64 // POST /v1/query calls
	failures atomic.Int64 // requests answered with an error
	ingested atomic.Int64 // edges accepted through /v1/ingest

	// Fault injection (-fault-inject): a load harness flips these through
	// POST /debugz/fault to rehearse a slow or dead worker without
	// touching the process.  While dead, /healthz and /v1/query answer
	// 503, so an upstream coordinator's prober ejects this worker and its
	// partial-failure policy sees a cleanly classified outage.
	faultInject  bool         // the endpoint is exposed at all
	faultDead    atomic.Bool  // answer 503 to queries and health probes
	faultLatency atomic.Int64 // added per-query latency, milliseconds
}

func newServer(cat *adsketch.Catalog) *server {
	return &server{cat: cat, start: time.Now()}
}

// defaultDataset returns the catalog's default dataset from a stats
// snapshot, or nil when none is attached.
func defaultDataset(cst *adsketch.CatalogStats) *adsketch.DatasetStats {
	for i := range cst.Datasets {
		if cst.Datasets[i].Name == cst.Default {
			return &cst.Datasets[i]
		}
	}
	return nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/meta", s.handleMeta)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	mux.HandleFunc("POST /v1/datasets/{name}", s.handleDatasetSwap)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDatasetDetach)
	if s.ing != nil {
		mux.HandleFunc("POST /v1/ingest/{dataset}", s.handleIngest)
	}
	if s.build != nil {
		s.build.Register(mux)
	}
	if s.faultInject {
		mux.HandleFunc("POST /debugz/fault", s.handleFault)
		mux.HandleFunc("GET /debugz/fault", s.handleFaultGet)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before writing the header, so an unencodable payload (e.g.
	// a non-finite score from degenerate sketch data) surfaces as a 500
	// instead of a silent empty 200.
	payload, err := json.Marshal(v)
	if err != nil {
		log.Printf("adsserver: encoding response: %v", err)
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(payload, '\n')); err != nil {
		log.Printf("adsserver: writing response: %v", err)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

// statusFor maps protocol and catalog errors to HTTP statuses: client
// mistakes are 400, unknown datasets 404, conflicting attaches 409,
// queries this sketch set cannot answer 422, the rest is 500.  (A
// missing backing file is only a client mistake on the admin swap path,
// which maps it separately; on the query path it is a server-side 500.)
func statusFor(err error) int {
	switch {
	case errors.Is(err, adsketch.ErrBadRequest), errors.Is(err, adsketch.ErrBadOption):
		return http.StatusBadRequest
	case errors.Is(err, adsketch.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, adsketch.ErrDatasetExists):
		return http.StatusConflict
	case errors.Is(err, adsketch.ErrUnsupportedQuery):
		return http.StatusUnprocessableEntity
	case errors.Is(err, adsketch.ErrShardUnavailable),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleQuery serves POST /v1/query.  The body is either one Request
// object (answered with one Response) or a JSON array of Requests
// (answered with an array of Responses in the same order; per-request
// failures are reported in Response.Error without failing the batch).
// Each request routes to the catalog dataset named by its "dataset"
// field (empty = the default dataset); a batch pins each referenced
// dataset once, so its answers never mix two versions across a
// concurrent swap.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.batches.Add(1)
	if err := s.injectFault(r.Context()); err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	buf := wire.Get()
	defer buf.Free()
	body, err := wire.ReadAll(buf.B, http.MaxBytesReader(w, r.Body, maxBodyBytes))
	buf.B = body // keep the grown capacity pooled
	if err != nil {
		s.failures.Add(1)
		status := http.StatusBadRequest
		if errors.As(err, new(*http.MaxBytesError)) {
			status = http.StatusRequestEntityTooLarge // split the batch
		}
		writeJSON(w, status, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	// The response speaks whatever the request spoke: binary frames get
	// binary answers, everything else stays JSON.  Errors are always
	// JSON (with their HTTP status), so a confused client sees a
	// readable message, not an opaque frame.
	if isBinaryContentType(r.Header.Get("Content-Type")) {
		s.serveQueryBinary(w, r.Context(), body)
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []adsketch.Request
		if err := json.Unmarshal(body, &reqs); err != nil {
			s.failures.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request batch: " + err.Error()})
			return
		}
		s.queries.Add(int64(len(reqs)))
		resps, err := s.cat.DoBatch(r.Context(), reqs)
		if err != nil {
			s.failures.Add(1)
			writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
			return
		}
		for i := range resps {
			if resps[i].Error != "" {
				s.failures.Add(1)
			}
		}
		writeJSON(w, http.StatusOK, resps)
		return
	}
	var req adsketch.Request
	if err := json.Unmarshal(body, &req); err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: " + err.Error()})
		return
	}
	s.queries.Add(1)
	resp, err := s.cat.Do(r.Context(), req)
	if err != nil {
		s.failures.Add(1)
		writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// serveQueryBinary answers one binary-framed /v1/query body: a single
// frame mirrors the single-object JSON form, a batch frame the array
// form.  Success is a binary frame; failure is a JSON errorBody with
// the usual status mapping.
func (s *server) serveQueryBinary(w http.ResponseWriter, ctx context.Context, body []byte) {
	reqs, batch, err := wire.DecodeRequests(body)
	if err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request frame: " + err.Error()})
		return
	}
	s.queries.Add(int64(len(reqs)))
	out := wire.Get()
	defer out.Free()
	if batch {
		resps, err := s.cat.DoBatch(ctx, reqs)
		if err != nil {
			s.failures.Add(1)
			writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
			return
		}
		for i := range resps {
			if resps[i].Error != "" {
				s.failures.Add(1)
			}
		}
		wire.EncodeResponses(out, resps)
	} else {
		resp, err := s.cat.Do(ctx, reqs[0])
		if err != nil {
			s.failures.Add(1)
			writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
			return
		}
		wire.EncodeResponse(out, &resp)
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(out.B); err != nil {
		log.Printf("adsserver: writing binary response: %v", err)
	}
}

// handleIngest serves POST /v1/ingest/{dataset}: a JSON edge batch —
// either {"edges":[{"u":0,"v":1,"w":1.5},...],"freeze":true} or a bare
// array of edges — applied to the dataset's incremental maintainer.
// The first batch for a name creates its ingestor (empty graph, the
// -ingest-* parameters); every -freeze-every edges, and on "freeze",
// the maintained set freezes and hot-swaps into the catalog, so
// concurrent queries on the dataset never see partial state.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("dataset")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		if errors.As(err, new(*http.MaxBytesError)) {
			status = http.StatusRequestEntityTooLarge // split the batch
		}
		writeJSON(w, status, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	ib, err := parseIngestBody(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding edge batch: " + err.Error()})
		return
	}
	ing, err := s.ing.get(name)
	if err != nil {
		writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
		return
	}
	edges := make([]adsketch.Edge, len(ib.Edges))
	for i, e := range ib.Edges {
		// Omitted "w" (0) means unit length; an explicitly negative weight
		// is a caller mistake, not a unit edge.
		if e.W < 0 {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("edge %d: negative weight %g", i, e.W)})
			return
		}
		edges[i] = adsketch.Edge{U: e.U, V: e.V, W: e.W}
	}
	n, err := ing.InsertBatch(edges)
	s.ingested.Add(int64(n))
	if err != nil {
		// Rejected edges (negative IDs, bad weights) are the caller's
		// mistake; Accepted reports how far the batch got.
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if ib.Freeze {
		if _, err := ing.Freeze(); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
	}
	st := ing.Stats()
	writeJSON(w, http.StatusOK, ingestResult{
		Dataset:  name,
		Accepted: n,
		Pending:  st.PendingEdges,
		Freezes:  st.Freezes,
		Version:  st.LastVersion,
	})
}

// handleMeta serves GET /v1/meta: the default dataset's serving identity
// — node range, partition position, sketch parameters.  A coordinator
// building its routing table reads this from every worker at startup.
func (s *server) handleMeta(w http.ResponseWriter, r *http.Request) {
	d, err := s.cat.Acquire("")
	if err != nil {
		writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
		return
	}
	defer d.Release()
	// Advertise the query transports so a dialing coordinator can
	// negotiate the binary framing; JSON-only builds never send this.
	w.Header().Set(protoHeader, advertisedProtocols)
	writeJSON(w, http.StatusOK, d.Backend().Meta())
}

// handleDatasetList serves GET /v1/datasets: every dataset's name,
// version, reference counts, residency, and serving identity.
func (s *server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cat.Stats())
}

// swapBody is the POST /v1/datasets/{name} payload: a server-side
// sketch file to publish under the name.
type swapBody struct {
	// Path is the sketch file to load, as seen by the server process.
	Path string `json:"path"`
	// Mmap maps the file (v3) instead of decoding it.
	Mmap bool `json:"mmap,omitempty"`
	// Partitions splits the set into in-process shard engines behind a
	// coordinator (0 or 1 = serve unsplit).
	Partitions int `json:"partitions,omitempty"`
}

// swapResult is the POST /v1/datasets/{name} response.
type swapResult struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
}

// handleDatasetSwap serves POST /v1/datasets/{name}: attach a new
// dataset, or atomically publish a new version of an existing one.
// In-flight queries drain on the old version; the swap never drops a
// request.
func (s *server) handleDatasetSwap(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	var sb swapBody
	if err := json.Unmarshal(body, &sb); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding body: " + err.Error()})
		return
	}
	if sb.Path == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: `"path" is required (a sketch file on the server)`})
		return
	}
	src := fileSource(sb.Path, sb.Mmap)
	if sb.Partitions > 1 {
		src = src.WithPartitions(sb.Partitions)
	}
	version, err := s.cat.Swap(name, src)
	if err != nil {
		// Here a missing file is the caller's mistake: they named the
		// path in this request.
		status := statusFor(err)
		if errors.Is(err, os.ErrNotExist) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	log.Printf("adsserver: dataset %q now serves %s (version %d, mmap=%v)", name, sb.Path, version, sb.Mmap)
	writeJSON(w, http.StatusOK, swapResult{Name: name, Version: version})
}

// handleDatasetDetach serves DELETE /v1/datasets/{name}.  In-flight
// queries drain; subsequent queries naming the dataset get 404.
func (s *server) handleDatasetDetach(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.cat.Detach(name); err != nil {
		writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
		return
	}
	log.Printf("adsserver: dataset %q detached", name)
	writeJSON(w, http.StatusOK, map[string]string{"name": name, "status": "detached"})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.faultDead.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "dead (injected fault)"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// injectFault applies the configured fault to one query: an injected
// outage fails immediately; injected latency sleeps (honoring the
// request's own deadline) before the query proceeds.
func (s *server) injectFault(ctx context.Context) error {
	if !s.faultInject {
		return nil
	}
	if s.faultDead.Load() {
		return errors.New("injected fault: worker is dead")
	}
	if ms := s.faultLatency.Load(); ms > 0 {
		t := time.NewTimer(time.Duration(ms) * time.Millisecond)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

// faultBody is the POST /debugz/fault payload; it replaces the whole
// fault state, so {} clears every fault.
type faultBody struct {
	// Dead makes /v1/query and /healthz answer 503 until cleared.
	Dead bool `json:"dead"`
	// LatencyMS delays every query by this many milliseconds.
	LatencyMS int64 `json:"latency_ms"`
}

// handleFault serves POST /debugz/fault (behind -fault-inject): the
// load harness's lever for rehearsing a slow or dead worker in place.
func (s *server) handleFault(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	var fb faultBody
	if err := json.Unmarshal(body, &fb); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding body: " + err.Error()})
		return
	}
	if fb.LatencyMS < 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "latency_ms must be >= 0"})
		return
	}
	s.faultDead.Store(fb.Dead)
	s.faultLatency.Store(fb.LatencyMS)
	log.Printf("adsserver: fault state set: dead=%v latency=%dms", fb.Dead, fb.LatencyMS)
	writeJSON(w, http.StatusOK, fb)
}

// handleFaultGet reports the current fault state.
func (s *server) handleFaultGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, faultBody{
		Dead:      s.faultDead.Load(),
		LatencyMS: s.faultLatency.Load(),
	})
}

// statszBody is the /statsz payload: what is being served, how the
// index caches are doing, and how much traffic has been answered.  The
// top-level serving fields describe the default dataset (the pre-catalog
// shape); Datasets carries every dataset's version, reference counts,
// residency, and cache counters.
type statszBody struct {
	Mode          string               `json:"mode"` // single | shard | coordinator | catalog
	Sketches      string               `json:"sketches,omitempty"`
	Kind          string               `json:"kind,omitempty"`
	FormatVersion int                  `json:"format_version"`
	FileVersion   int                  `json:"file_version,omitempty"` // codec version of the default dataset's file
	Mmap          bool                 `json:"mmap,omitempty"`         // default dataset served from an mmap region
	Nodes         int                  `json:"nodes,omitempty"`        // global node count of the default dataset
	K             int                  `json:"k,omitempty"`
	UptimeSeconds float64              `json:"uptime_seconds"`
	Shard         *adsketch.ShardMeta  `json:"shard,omitempty"`  // shard mode: what this worker owns
	Shards        []adsketch.ShardMeta `json:"shards,omitempty"` // coordinator mode: the routing table

	// Coordinator-mode failure handling: per-partition call, error,
	// retry, and hedge counters, and (with -probe-interval) every
	// worker's probe state.
	Scatter      []adsketch.ShardCallStats `json:"scatter,omitempty"`
	Workers      []workerHealth            `json:"workers,omitempty"`
	LocalNodes   int                       `json:"local_nodes,omitempty"`
	TotalEntries int                       `json:"total_entries,omitempty"`

	Cache adsketch.CacheStats `json:"cache"`

	// The dataset catalog: default routing name, memory budget, and the
	// per-dataset lifecycle (version, refs, draining, residency, cache).
	Default       string                  `json:"default_dataset,omitempty"`
	BudgetBytes   int64                   `json:"budget_bytes,omitempty"`
	ResidentBytes int64                   `json:"resident_bytes,omitempty"`
	Datasets      []adsketch.DatasetStats `json:"datasets"`

	Batches  int64 `json:"batches"`
	Queries  int64 `json:"queries"`
	Failures int64 `json:"failures"`

	// The streaming-ingest tier (-ingest): edges accepted and the
	// per-dataset maintainer snapshots — ingest lag (pending edges and
	// publish staleness), propagation counters, last published version.
	IngestedEdges int64                    `json:"ingested_edges,omitempty"`
	Ingest        []adsketch.IngestorStats `json:"ingest,omitempty"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	cst := s.cat.Stats()
	body := statszBody{
		Mode:          "catalog",
		FormatVersion: adsketch.SketchFormatVersion,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Default:       cst.Default,
		BudgetBytes:   cst.BudgetBytes,
		ResidentBytes: cst.ResidentBytes,
		Datasets:      cst.Datasets,
		Batches:       s.batches.Load(),
		Queries:       s.queries.Load(),
		Failures:      s.failures.Load(),
	}
	if s.ing != nil {
		body.IngestedEdges = s.ingested.Load()
		body.Ingest = s.ing.stats()
	}
	if s.prober != nil {
		body.Workers = s.prober.health()
	}
	// The top-level serving fields mirror the default dataset, keeping
	// the single-set payload shape; a catalog without a default (named
	// datasets only) reports mode "catalog" and the Datasets list alone.
	// Everything comes from the stats snapshot — an evicted default is
	// NOT reloaded just to be described (a monitoring scrape must never
	// thrash the eviction budget); only a resident one is briefly pinned
	// for the pieces stats cannot carry (routing table, set counters).
	if def := defaultDataset(&cst); def != nil {
		body.Sketches = def.Path
		body.FileVersion = def.FileVersion
		body.Mmap = def.Mmap
		if def.Resident && def.Meta != nil {
			body.Mode = def.Mode
			body.Kind = def.Meta.Kind
			body.Nodes = def.Meta.TotalNodes
			body.K = def.Meta.K
			if def.Cache != nil {
				body.Cache = *def.Cache
			}
			if def.Mode == "shard" {
				body.Shard = def.Meta
			}
			if d := s.cat.AcquireResident(""); d != nil {
				be := d.Backend()
				if c, ok := be.(*adsketch.Coordinator); ok {
					body.Shards = c.ShardMetas()
					body.Scatter = c.Stats().Shards
				}
				if si, ok := be.(setInfo); ok {
					set := si.Set()
					body.LocalNodes = set.NumNodes()
					body.TotalEntries = set.TotalEntries()
				}
				d.Release()
			}
		}
	}
	writeJSON(w, http.StatusOK, body)
}
