package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"adsketch"
)

// maxBodyBytes bounds one request body; a batch of a few thousand
// queries fits comfortably.
const maxBodyBytes = 16 << 20

// server is the HTTP face of one Engine.  It is deliberately thin: all
// query semantics live in the adsketch protocol layer, so the handler
// only decodes, dispatches, encodes, and counts.
type server struct {
	eng        *adsketch.Engine
	sketchPath string
	kind       string
	start      time.Time

	queries  atomic.Int64 // protocol requests evaluated (batch items count individually)
	batches  atomic.Int64 // POST /v1/query calls
	failures atomic.Int64 // requests answered with an error
}

func newServer(eng *adsketch.Engine, sketchPath string) *server {
	kind := "uniform"
	switch eng.Set().(type) {
	case *adsketch.WeightedSet:
		kind = "weighted"
	case *adsketch.ApproxSet:
		kind = "approximate"
	}
	return &server{eng: eng, sketchPath: sketchPath, kind: kind, start: time.Now()}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before writing the header, so an unencodable payload (e.g.
	// a non-finite score from degenerate sketch data) surfaces as a 500
	// instead of a silent empty 200.
	payload, err := json.Marshal(v)
	if err != nil {
		log.Printf("adsserver: encoding response: %v", err)
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(payload, '\n')); err != nil {
		log.Printf("adsserver: writing response: %v", err)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

// statusFor maps protocol errors to HTTP statuses: client mistakes are
// 400, queries this sketch set cannot answer are 422, the rest is 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, adsketch.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, adsketch.ErrUnsupportedQuery):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleQuery serves POST /v1/query.  The body is either one Request
// object (answered with one Response) or a JSON array of Requests
// (answered with an array of Responses in the same order; per-request
// failures are reported in Response.Error without failing the batch).
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.batches.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.failures.Add(1)
		status := http.StatusBadRequest
		if errors.As(err, new(*http.MaxBytesError)) {
			status = http.StatusRequestEntityTooLarge // split the batch
		}
		writeJSON(w, status, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []adsketch.Request
		if err := json.Unmarshal(body, &reqs); err != nil {
			s.failures.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request batch: " + err.Error()})
			return
		}
		s.queries.Add(int64(len(reqs)))
		resps, err := s.eng.DoBatch(r.Context(), reqs)
		if err != nil {
			s.failures.Add(1)
			writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
			return
		}
		for i := range resps {
			if resps[i].Error != "" {
				s.failures.Add(1)
			}
		}
		writeJSON(w, http.StatusOK, resps)
		return
	}
	var req adsketch.Request
	if err := json.Unmarshal(body, &req); err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: " + err.Error()})
		return
	}
	s.queries.Add(1)
	resp, err := s.eng.Do(r.Context(), req)
	if err != nil {
		s.failures.Add(1)
		writeJSON(w, statusFor(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statszBody is the /statsz payload: what is being served, how the
// sharded index cache is doing, and how much traffic has been answered.
type statszBody struct {
	Sketches      string  `json:"sketches"`
	Kind          string  `json:"kind"`
	FormatVersion int     `json:"format_version"`
	Nodes         int     `json:"nodes"`
	K             int     `json:"k"`
	TotalEntries  int     `json:"total_entries"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Cache adsketch.CacheStats `json:"cache"`

	Batches  int64 `json:"batches"`
	Queries  int64 `json:"queries"`
	Failures int64 `json:"failures"`
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	set := s.eng.Set()
	writeJSON(w, http.StatusOK, statszBody{
		Sketches:      s.sketchPath,
		Kind:          s.kind,
		FormatVersion: adsketch.SketchFormatVersion,
		Nodes:         set.NumNodes(),
		K:             set.K(),
		TotalEntries:  set.TotalEntries(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache:         s.eng.CacheStats(),
		Batches:       s.batches.Load(),
		Queries:       s.queries.Load(),
		Failures:      s.failures.Load(),
	})
}
