package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"adsketch"
)

// httpShard is an adsketch.ShardBackend over a remote adsserver worker:
// the coordinator half of the distributed scatter-gather topology.  The
// worker's identity (node range, partition position, sketch parameters)
// is fetched once from /v1/meta at dial time; queries go through
// /v1/query exactly as any other client's would, so a worker needs no
// coordinator-specific surface.
type httpShard struct {
	base   string
	meta   adsketch.ShardMeta
	client *http.Client
}

var _ adsketch.ShardBackend = (*httpShard)(nil)

// dialShard connects to a worker and reads its serving identity.
func dialShard(base string) (*httpShard, error) {
	s := &httpShard{
		base:   strings.TrimSuffix(base, "/"),
		client: &http.Client{Timeout: 60 * time.Second},
	}
	resp, err := s.client.Get(s.base + "/v1/meta")
	if err != nil {
		return nil, fmt.Errorf("dialing shard %s: %w", base, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("dialing shard %s: %w", base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dialing shard %s: %s: %s", base, resp.Status, strings.TrimSpace(string(payload)))
	}
	if err := json.Unmarshal(payload, &s.meta); err != nil {
		return nil, fmt.Errorf("dialing shard %s: decoding /v1/meta: %v", base, err)
	}
	return s, nil
}

func (s *httpShard) Meta() adsketch.ShardMeta { return s.meta }

// post sends one /v1/query body and returns the raw response payload.
func (s *httpShard) post(ctx context.Context, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, shardStatusErr(resp.StatusCode, payload)
	}
	return payload, nil
}

// shardStatusErr converts a worker's HTTP error back into the protocol's
// typed sentinels, so a coordinator's error classification (and its own
// HTTP status mapping) survives the extra hop.
func shardStatusErr(status int, payload []byte) error {
	msg := strings.TrimSpace(string(payload))
	var eb errorBody
	if json.Unmarshal(payload, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	switch status {
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", adsketch.ErrBadRequest, msg)
	case http.StatusUnprocessableEntity:
		return fmt.Errorf("%w: %s", adsketch.ErrUnsupportedQuery, msg)
	default:
		return fmt.Errorf("worker returned %d: %s", status, msg)
	}
}

func (s *httpShard) Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return adsketch.Response{}, err
	}
	payload, err := s.post(ctx, body)
	if err != nil {
		return adsketch.Response{}, err
	}
	var resp adsketch.Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return adsketch.Response{}, fmt.Errorf("decoding worker response: %v", err)
	}
	return resp, nil
}

func (s *httpShard) DoBatch(ctx context.Context, reqs []adsketch.Request) ([]adsketch.Response, error) {
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, err
	}
	payload, err := s.post(ctx, body)
	if err != nil {
		return nil, err
	}
	var resps []adsketch.Response
	if err := json.Unmarshal(payload, &resps); err != nil {
		return nil, fmt.Errorf("decoding worker batch response: %v", err)
	}
	return resps, nil
}
