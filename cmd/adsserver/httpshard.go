package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"adsketch"
	"adsketch/internal/wire"
)

// maxShardRespBytes caps how much of a worker response the coordinator
// will read; a larger payload is cut off and surfaces as a decode error.
const maxShardRespBytes = 64 << 20

// httpShard is an adsketch.ShardBackend over a remote adsserver worker:
// the coordinator half of the distributed scatter-gather topology.  The
// worker's identity (node range, partition position, sketch parameters)
// is fetched once from /v1/meta at dial time; queries go through
// /v1/query exactly as any other client's would, so a worker needs no
// coordinator-specific surface.
//
// The wire format is negotiated at dial: a worker whose /v1/meta
// advertises the binary framing (Ads-Protocols) gets binary frames,
// anything else — including every pre-binary worker build — gets JSON.
type httpShard struct {
	base   string
	meta   adsketch.ShardMeta
	client *http.Client
	binary bool // negotiated at dial; false = JSON fallback
}

var _ adsketch.ShardBackend = (*httpShard)(nil)

// shardTransport is shared by every worker client: one keep-alive
// connection pool sized for scatter fan-out concurrency instead of
// net/http's 2-idle-conns-per-host default, which would re-handshake on
// nearly every scattered call.
var shardTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	t.IdleConnTimeout = 90 * time.Second
	t.DisableKeepAlives = false
	return t
}()

// clusterConfig carries the coordinator-mode tuning knobs: how to dial
// workers, how the coordinator treats a slow or failing shard, and
// whether to health-probe the topology.
type clusterConfig struct {
	dialTimeout   time.Duration // per-attempt budget for a worker's /v1/meta
	dialRetries   int           // extra dial attempts per worker
	dialBackoff   time.Duration // delay before the first dial retry (doubles per attempt)
	shardTimeout  time.Duration // per-attempt shard call deadline (0 = none)
	shardRetries  int           // extra rounds through a partition's replica chain
	retryBackoff  time.Duration // delay before the first shard retry
	hedgeDelay    time.Duration // hedge a second replica after this wait (0 = off)
	probeInterval time.Duration // /healthz polling interval (0 = no probing)
	workerProto   string        // "auto" (binary when advertised) or "json" (force fallback)
}

// clusterDefaults is the production posture: bounded dials, a generous
// per-shard deadline with one retry, hedging off (it needs replicas and
// an explicit latency target), probing off (opt in via -probe-interval),
// binary framing wherever workers advertise it.
func clusterDefaults() clusterConfig {
	return clusterConfig{
		dialTimeout:  5 * time.Second,
		dialRetries:  2,
		dialBackoff:  250 * time.Millisecond,
		shardTimeout: 15 * time.Second,
		shardRetries: 1,
		retryBackoff: 50 * time.Millisecond,
		workerProto:  "auto",
	}
}

func (c clusterConfig) coordinatorOptions() []adsketch.CoordinatorOption {
	return []adsketch.CoordinatorOption{
		adsketch.WithShardTimeout(c.shardTimeout),
		adsketch.WithShardRetries(c.shardRetries),
		adsketch.WithRetryBackoff(c.retryBackoff),
		adsketch.WithHedgeDelay(c.hedgeDelay),
	}
}

// dialShard connects to a worker and reads its serving identity, with a
// per-attempt timeout and bounded retries — a worker that is still
// binding its listener gets a grace period, while a wrong URL fails in
// seconds instead of wedging startup on a default TCP timeout.
func dialShard(base string, cfg clusterConfig) (*httpShard, error) {
	s := &httpShard{
		base:   strings.TrimSuffix(base, "/"),
		client: &http.Client{Timeout: 60 * time.Second, Transport: shardTransport},
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = s.fetchMeta(cfg.dialTimeout, cfg.workerProto != "json"); err == nil {
			return s, nil
		}
		if attempt >= cfg.dialRetries {
			return nil, err
		}
		delay := cfg.dialBackoff << attempt
		if max := time.Second; delay > max || delay <= 0 {
			delay = max
		}
		time.Sleep(delay)
	}
}

// fetchMeta performs one /v1/meta attempt under its own deadline and,
// when allowed, negotiates the binary framing off the worker's protocol
// advertisement.
func (s *httpShard) fetchMeta(timeout time.Duration, allowBinary bool) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/v1/meta", nil)
	if err != nil {
		return fmt.Errorf("dialing shard %s: %w", s.base, err)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("dialing shard %s: %w", s.base, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("dialing shard %s: %w", s.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dialing shard %s: %s: %s", s.base, resp.Status, strings.TrimSpace(string(payload)))
	}
	if err := json.Unmarshal(payload, &s.meta); err != nil {
		return fmt.Errorf("dialing shard %s: decoding /v1/meta: %v", s.base, err)
	}
	s.binary = allowBinary && strings.Contains(resp.Header.Get(protoHeader), wire.ContentType)
	return nil
}

func (s *httpShard) Meta() adsketch.ShardMeta { return s.meta }

// post sends one /v1/query body and fills out with the response
// payload.  out is a pooled buffer the caller owns; its capacity is
// reused across calls instead of io.ReadAll's fresh allocation, and the
// read is capped at maxShardRespBytes (an oversized payload is cut off
// there and fails decoding).
func (s *httpShard) post(ctx context.Context, contentType string, body []byte, out *wire.Buf) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := wire.ReadAll(out.B[:0], io.LimitReader(resp.Body, maxShardRespBytes))
	out.B = payload
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return shardStatusErr(resp.StatusCode, payload)
	}
	return nil
}

// shardStatusErr converts a worker's HTTP error back into the protocol's
// typed sentinels, so a coordinator's error classification (and its own
// HTTP status mapping) survives the extra hop.
func shardStatusErr(status int, payload []byte) error {
	msg := strings.TrimSpace(string(payload))
	var eb errorBody
	if json.Unmarshal(payload, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	switch status {
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", adsketch.ErrBadRequest, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", adsketch.ErrUnknownDataset, msg)
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", adsketch.ErrDatasetExists, msg)
	case http.StatusUnprocessableEntity:
		return fmt.Errorf("%w: %s", adsketch.ErrUnsupportedQuery, msg)
	case http.StatusServiceUnavailable:
		// The worker is alive but cannot answer right now (draining,
		// injected fault, its own downstream ejected).  Classified
		// unavailable so the coordinator retries or fails over instead of
		// treating it as a deterministic protocol error.
		return fmt.Errorf("%w: worker returned 503: %s", adsketch.ErrShardUnavailable, msg)
	default:
		return fmt.Errorf("worker returned %d: %s", status, msg)
	}
}

func (s *httpShard) Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error) {
	out := wire.Get()
	defer out.Free()
	if s.binary {
		frame := wire.Get()
		defer frame.Free()
		wire.EncodeRequest(frame, &req)
		if err := s.post(ctx, wire.ContentType, frame.B, out); err != nil {
			return adsketch.Response{}, err
		}
		resp, err := wire.DecodeResponse(out.B)
		if err != nil {
			return adsketch.Response{}, fmt.Errorf("decoding worker response: %v", err)
		}
		return resp, nil
	}
	body, err := json.Marshal(req)
	if err != nil {
		return adsketch.Response{}, err
	}
	if err := s.post(ctx, "application/json", body, out); err != nil {
		return adsketch.Response{}, err
	}
	var resp adsketch.Response
	if err := json.Unmarshal(out.B, &resp); err != nil {
		return adsketch.Response{}, fmt.Errorf("decoding worker response: %v", err)
	}
	return resp, nil
}

func (s *httpShard) DoBatch(ctx context.Context, reqs []adsketch.Request) ([]adsketch.Response, error) {
	out := wire.Get()
	defer out.Free()
	if s.binary {
		frame := wire.Get()
		defer frame.Free()
		wire.EncodeRequests(frame, reqs)
		if err := s.post(ctx, wire.ContentType, frame.B, out); err != nil {
			return nil, err
		}
		resps, _, err := wire.DecodeResponses(out.B)
		if err != nil {
			return nil, fmt.Errorf("decoding worker batch response: %v", err)
		}
		return resps, nil
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, err
	}
	if err := s.post(ctx, "application/json", body, out); err != nil {
		return nil, err
	}
	var resps []adsketch.Response
	if err := json.Unmarshal(out.B, &resps); err != nil {
		return nil, fmt.Errorf("decoding worker batch response: %v", err)
	}
	return resps, nil
}
