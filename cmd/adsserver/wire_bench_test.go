package main

// Transport benchmarks over real HTTP loopback: what one coordinator
// hop costs under each wire format, and what the batched frame saves a
// scatter over per-request fan-out.

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"adsketch"
)

var benchTopoOnce struct {
	sync.Once
	err     error
	workers []*httptest.Server // one per partition
	whole   *httptest.Server   // unsplit single server
}

// benchTopology builds a 2000-node set once and serves it as a single
// worker plus a 2-partition split, the topology every transport
// benchmark dials.  Servers leak until the process exits — fine for a
// benchmark binary.
func benchTopology(b *testing.B) (whole *httptest.Server, workers []*httptest.Server) {
	b.Helper()
	benchTopoOnce.Do(func() {
		g := adsketch.PreferentialAttachment(2000, 3, 7)
		set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(42))
		if err != nil {
			benchTopoOnce.err = err
			return
		}
		serve := func(be adsketch.ShardBackend) (*httptest.Server, error) {
			cat, err := adsketch.NewCatalog()
			if err != nil {
				return nil, err
			}
			if err := cat.Attach(adsketch.DefaultDataset, adsketch.BackendSource(be)); err != nil {
				return nil, err
			}
			return httptest.NewServer(newServer(cat).mux()), nil
		}
		eng, err := adsketch.NewEngine(set)
		if err != nil {
			benchTopoOnce.err = err
			return
		}
		if benchTopoOnce.whole, err = serve(eng); err != nil {
			benchTopoOnce.err = err
			return
		}
		parts, err := adsketch.SplitSketchSet(set, 2)
		if err != nil {
			benchTopoOnce.err = err
			return
		}
		for _, p := range parts {
			se, err := adsketch.NewShardEngine(p)
			if err != nil {
				benchTopoOnce.err = err
				return
			}
			ts, err := serve(se)
			if err != nil {
				benchTopoOnce.err = err
				return
			}
			benchTopoOnce.workers = append(benchTopoOnce.workers, ts)
		}
	})
	if benchTopoOnce.err != nil {
		b.Fatal(benchTopoOnce.err)
	}
	return benchTopoOnce.whole, benchTopoOnce.workers
}

// BenchmarkHTTPShardRoundtrip: one coordinator-to-worker hop, JSON
// fallback vs negotiated binary framing, same request.
func BenchmarkHTTPShardRoundtrip(b *testing.B) {
	whole, _ := benchTopology(b)
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 17, 123, 999}}}
	ctx := context.Background()
	run := func(b *testing.B, s *httpShard) {
		b.Helper()
		if _, err := s.Do(ctx, req); err != nil { // warm the connection
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Do(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("json", func(b *testing.B) {
		cfg := clusterDefaults()
		cfg.workerProto = "json"
		s, err := dialShard(whole.URL, cfg)
		if err != nil {
			b.Fatal(err)
		}
		run(b, s)
	})
	b.Run("binary", func(b *testing.B) {
		s, err := dialShard(whole.URL, clusterDefaults())
		if err != nil {
			b.Fatal(err)
		}
		if !s.binary {
			b.Fatal("worker did not negotiate binary framing")
		}
		run(b, s)
	})
}

// BenchmarkCoordinatorScatterFrame: an 8-query batch through a real
// 2-worker coordinator — per-request fan-out vs the single batched
// frame per shard that DoBatch sends.
func BenchmarkCoordinatorScatterFrame(b *testing.B) {
	_, workers := benchTopology(b)
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.URL
	}
	coordBE, _, err := dialWorkers(urls, clusterDefaults())
	if err != nil {
		b.Fatal(err)
	}
	var reqs []adsketch.Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, adsketch.Request{
			Closeness: &adsketch.ClosenessQuery{Nodes: []int32{int32(i * 250), int32(i*250 + 1)}},
		})
	}
	ctx := context.Background()
	if _, err := coordBE.DoBatch(ctx, reqs); err != nil { // warm connections
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := coordBE.Do(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("framed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coordBE.DoBatch(ctx, reqs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
