package main

// End-to-end tests of the scatter-gather topologies: partition files on
// disk, worker servers loading them, a coordinator dialing the workers
// over real HTTP — and byte parity against a single server over the
// unsplit set.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"adsketch"
)

// e2eRequests is the query corpus every topology must agree on.
func e2eRequests() []adsketch.Request {
	return []adsketch.Request{
		{ID: "cl", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 199, 200, 399}}},
		{ID: "nb", Neighborhood: &adsketch.NeighborhoodQuery{Radius: 2, Nodes: []int32{5, 350}}},
		{ID: "tk", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 7}},
		{ID: "ja", Jaccard: &adsketch.JaccardQuery{A: 1, RadiusA: 2, B: 399, RadiusB: 2}},
		{ID: "iu", Influence: &adsketch.InfluenceQuery{Seeds: []int32{0, 399}, Radius: 2}},
		{ID: "db", DistanceBound: &adsketch.DistanceBoundQuery{A: 2, B: 398}},
		{ID: "sk", Sketch: &adsketch.SketchQuery{Node: 200}},
	}
}

// buildSplitFiles builds a set, saves it whole and as 2 partition
// files, and returns the paths.
func buildSplitFiles(t *testing.T) (whole string, parts []string, set adsketch.SketchSet) {
	t.Helper()
	g := adsketch.PreferentialAttachment(400, 3, 7)
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	whole = filepath.Join(dir, "whole.ads")
	f, err := os.Create(whole)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	split, err := adsketch.SplitSketchSet(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range split {
		name := filepath.Join(dir, "part.ads")
		name = filepath.Join(dir, "part"+string(rune('0'+p.Index()))+".ads")
		pf, err := os.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.WriteTo(pf); err != nil {
			t.Fatal(err)
		}
		pf.Close()
		parts = append(parts, name)
	}
	return whole, parts, set
}

// buildSplitFilesV3 writes the same split as buildSplitFiles in the
// columnar v3 format — the prebuilt shard files an -mmap worker opens.
func buildSplitFilesV3(t *testing.T, set adsketch.SketchSet) []string {
	t.Helper()
	split, err := adsketch.SplitSketchSet(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var parts []string
	for _, p := range split {
		name := filepath.Join(dir, "part"+string(rune('0'+p.Index()))+".v3.ads")
		pf, err := os.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := adsketch.WritePartitionV3(pf, p); err != nil {
			t.Fatal(err)
		}
		pf.Close()
		parts = append(parts, name)
	}
	return parts
}

// TestMmapWorkerParity: workers serving prebuilt kind-3 v3 shard files
// through -mmap must answer byte-identically to the in-memory workers
// over the v2 partition files, both directly and behind a coordinator.
func TestMmapWorkerParity(t *testing.T) {
	whole, v2parts, set := buildSplitFiles(t)
	v3parts := buildSplitFilesV3(t, set)
	single, _ := serveFile(t, whole, 0)

	body, err := json.Marshal(e2eRequests())
	if err != nil {
		t.Fatal(err)
	}
	post := func(url string) []byte {
		t.Helper()
		resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var memURLs, mmapURLs []string
	for i := range v2parts {
		mem, mode := serveFile(t, v2parts[i], 0)
		if mode != "shard" {
			t.Fatalf("v2 partition file %d served in %q mode", i, mode)
		}
		mm, mode := serveFileMmap(t, v3parts[i], 0, true)
		if mode != "shard" {
			t.Fatalf("mmap'd v3 partition file %d served in %q mode", i, mode)
		}
		memURLs = append(memURLs, mem.URL)
		mmapURLs = append(mmapURLs, mm.URL)

		// Per-worker parity on an owned-node query.
		meta := struct{ Lo int32 }{}
		r, err := http.Get(mm.URL + "/v1/meta")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&meta); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		owned, _ := json.Marshal(adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{meta.Lo}}})
		postOwned := func(url string) []byte {
			resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(owned))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return buf.Bytes()
		}
		if a, b := postOwned(mem.URL), postOwned(mm.URL); !bytes.Equal(a, b) {
			t.Errorf("worker %d: mmap answer differs from in-memory:\n  mmap   %s\n  memory %s", i, b, a)
		}
	}

	memCoord, _, err := dialWorkers(memURLs, clusterDefaults())
	if err != nil {
		t.Fatal(err)
	}
	mmapCoord, _, err := dialWorkers(mmapURLs, clusterDefaults())
	if err != nil {
		t.Fatal(err)
	}
	memTS := serveBackend(t, memCoord)
	mmapTS := serveBackend(t, mmapCoord)

	singleBytes := post(single.URL)
	if got := post(mmapTS.URL); !bytes.Equal(got, singleBytes) {
		t.Errorf("mmap-worker coordinator differs from single server:\n  mmap   %s\n  single %s", got, singleBytes)
	}
	if a, b := post(memTS.URL), post(mmapTS.URL); !bytes.Equal(a, b) {
		t.Errorf("mmap-worker coordinator differs from in-memory coordinator:\n  mmap   %s\n  memory %s", b, a)
	}
}

// serveFile spins up one adsserver over a sketch file, exactly as main
// would (buildCatalog + mux), returning the server and the default
// dataset's serving mode.
func serveFile(t *testing.T, path string, partitions int) (*httptest.Server, string) {
	t.Helper()
	return serveFileMmap(t, path, partitions, false)
}

// serveFileMmap is serveFile with the -mmap flag.
func serveFileMmap(t *testing.T, path string, partitions int, useMmap bool) (*httptest.Server, string) {
	t.Helper()
	cat, _, err := buildCatalog(path, "", partitions, useMmap, nil, 0, clusterDefaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	cst := cat.Stats()
	var mode string
	if def := defaultDataset(&cst); def != nil {
		mode = def.Mode
	}
	ts := httptest.NewServer(newServer(cat).mux())
	t.Cleanup(ts.Close)
	return ts, mode
}

// serveBackend spins up one adsserver over an already-built backend
// (e.g. a coordinator over dialed workers) as the default dataset.
func serveBackend(t *testing.T, be adsketch.ShardBackend) *httptest.Server {
	t.Helper()
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Attach(adsketch.DefaultDataset, adsketch.BackendSource(be)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	ts := httptest.NewServer(newServer(cat).mux())
	t.Cleanup(ts.Close)
	return ts
}

// TestDistributedCoordinatorParity is the full production topology: two
// worker processes each serving one partition file, a coordinator
// dialing them over HTTP, answering byte-identically to a single server
// over the unsplit set.
func TestDistributedCoordinatorParity(t *testing.T) {
	whole, parts, _ := buildSplitFiles(t)
	single, mode := serveFile(t, whole, 0)
	if mode != "single" {
		t.Fatalf("whole file served in %q mode", mode)
	}
	var workerURLs []string
	for i, p := range parts {
		w, mode := serveFile(t, p, 0)
		if mode != "shard" {
			t.Fatalf("partition file %d served in %q mode", i, mode)
		}
		workerURLs = append(workerURLs, w.URL)
	}
	coordBE, _, err := dialWorkers(workerURLs, clusterDefaults())
	if err != nil {
		t.Fatal(err)
	}
	coord := serveBackend(t, coordBE)

	body, err := json.Marshal(e2eRequests())
	if err != nil {
		t.Fatal(err)
	}
	post := func(url string) []byte {
		t.Helper()
		resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, buf.Bytes())
		}
		return buf.Bytes()
	}
	singleBytes := post(single.URL)
	coordBytes := post(coord.URL)
	if !bytes.Equal(singleBytes, coordBytes) {
		t.Errorf("distributed coordinator answers differ from single server:\n  coordinator %s\n  single      %s",
			coordBytes, singleBytes)
	}
}

// TestInProcessPartitionsParity: -partitions N serving must match the
// unsplit server byte-for-byte too.
func TestInProcessPartitionsParity(t *testing.T) {
	whole, _, _ := buildSplitFiles(t)
	single, _ := serveFile(t, whole, 0)
	parted, mode := serveFile(t, whole, 4)
	if mode != "coordinator" {
		t.Fatalf("-partitions 4 served in %q mode", mode)
	}
	body, err := json.Marshal(e2eRequests())
	if err != nil {
		t.Fatal(err)
	}
	get := func(ts *httptest.Server) []byte {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.Bytes()
	}
	if a, b := get(single), get(parted); !bytes.Equal(a, b) {
		t.Errorf("in-process partitioned server differs:\n  partitioned %s\n  single      %s", b, a)
	}
}

// TestWorkerMetaAndOwnership: /v1/meta identifies the partition, and the
// worker rejects nodes it does not own with a 400.
func TestWorkerMetaAndOwnership(t *testing.T) {
	_, parts, set := buildSplitFiles(t)
	worker, _ := serveFile(t, parts[1], 0)

	resp, err := http.Get(worker.URL + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	var meta adsketch.ShardMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if meta.Index != 1 || meta.Count != 2 || meta.TotalNodes != set.NumNodes() || meta.Lo != int32(set.NumNodes()/2) {
		t.Fatalf("worker meta: %+v", meta)
	}

	// A node owned by partition 0 must be refused here.
	body, _ := json.Marshal(adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}}})
	r2, err := http.Post(worker.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("unowned node: status %d, want 400", r2.StatusCode)
	}

	// An owned node answers with the whole-set value.
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Closeness(context.Background(), meta.Lo)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = json.Marshal(adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{meta.Lo}}})
	r3, err := http.Post(worker.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var got adsketch.Response
	if err := json.NewDecoder(r3.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if len(got.Scores) != 1 || got.Scores[0] != want[0] {
		t.Errorf("worker closeness(%d) = %+v, want %v", meta.Lo, got, want[0])
	}
}

// TestCoordinatorStatsz: the coordinator's /statsz exposes the routing
// table and the aggregated per-partition cache counters.
func TestCoordinatorStatsz(t *testing.T) {
	whole, _, set := buildSplitFiles(t)
	parted, _ := serveFile(t, whole, 4)

	// Touch every node so all caches populate.
	nodes := make([]int32, set.NumNodes())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	body, _ := json.Marshal(adsketch.Request{Harmonic: &adsketch.HarmonicQuery{Nodes: nodes}})
	r, err := http.Post(parted.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	resp, err := http.Get(parted.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statszBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "coordinator" || len(st.Shards) != 4 || st.Nodes != set.NumNodes() {
		t.Fatalf("coordinator statsz: %+v", st)
	}
	covered := 0
	for _, m := range st.Shards {
		covered += int(m.Hi - m.Lo)
	}
	if covered != set.NumNodes() {
		t.Errorf("routing table covers %d of %d nodes", covered, set.NumNodes())
	}
	if st.Cache.Slots != set.NumNodes() || st.Cache.Built != set.NumNodes() {
		t.Errorf("aggregated cache stats: %+v", st.Cache)
	}
}
