package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"adsketch"
)

// newTestServer builds a small sketch set, round-trips it through a real
// sketch file (the same artifact flow adsserver uses in production), and
// serves it as a catalog's default dataset from an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, *adsketch.Engine) {
	t.Helper()
	g := adsketch.PreferentialAttachment(400, 3, 7)
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sketches.ads")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	loaded, err := adsketch.ReadSketchSet(rf)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adsketch.NewEngine(loaded, adsketch.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Attach(adsketch.DefaultDataset, adsketch.BackendSource(eng)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(cat).mux())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { cat.Close() })
	return ts, eng
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestServerClosenessBatch is the acceptance path: a closeness batch
// POSTed to /v1/query must come back with scores identical to the direct
// Engine call on the same sketches.
func TestServerClosenessBatch(t *testing.T) {
	ts, eng := newTestServer(t)
	nodes := []int32{0, 17, 123, 399}
	want, err := eng.Closeness(context.Background(), nodes...)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/query", adsketch.Request{
		ID:        "c1",
		Closeness: &adsketch.ClosenessQuery{Nodes: nodes},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got adsketch.Response
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "c1" || got.Kind != "closeness" || got.Error != "" {
		t.Fatalf("response envelope: %+v", got)
	}
	if len(got.Scores) != len(nodes) {
		t.Fatalf("got %d scores for %d nodes", len(got.Scores), len(nodes))
	}
	for i := range nodes {
		if got.Scores[i] != want[i] {
			t.Errorf("node %d: HTTP score %v, direct %v", nodes[i], got.Scores[i], want[i])
		}
	}
}

func TestServerBatchArray(t *testing.T) {
	ts, eng := newTestServer(t)
	ctx := context.Background()
	wantTop, err := eng.TopCloseness(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantSizes, err := eng.NeighborhoodSizes(ctx, 2, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}

	reqs := []adsketch.Request{
		{ID: "top", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 5}},
		{ID: "sizes", Neighborhood: &adsketch.NeighborhoodQuery{Radius: 2, Nodes: []int32{1, 2, 3}}},
		{ID: "bad", Neighborhood: &adsketch.NeighborhoodQuery{Radius: -1, Nodes: []int32{1}}},
	}
	resp, body := postJSON(t, ts.URL+"/v1/query", reqs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got []adsketch.Response
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d responses", len(got))
	}
	if len(got[0].Ranking) != 5 {
		t.Fatalf("topk ranking: %+v", got[0].Ranking)
	}
	for i, r := range got[0].Ranking {
		if r != wantTop[i] {
			t.Errorf("ranking[%d] = %+v, want %+v", i, r, wantTop[i])
		}
	}
	for i, s := range got[1].Scores {
		if s != wantSizes[i] {
			t.Errorf("sizes[%d] = %v, want %v", i, s, wantSizes[i])
		}
	}
	// The malformed request fails alone, inside the batch.
	if got[2].Error == "" || got[2].ID != "bad" {
		t.Errorf("bad request in batch: %+v", got[2])
	}
}

func TestServerErrorStatuses(t *testing.T) {
	ts, _ := newTestServer(t)
	// No query set -> 400.
	resp, _ := postJSON(t, ts.URL+"/v1/query", adsketch.Request{ID: "empty"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request: status %d, want 400", resp.StatusCode)
	}
	// Undecodable body -> 400.
	r2, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", r2.StatusCode)
	}
}

func TestServerHealthAndStats(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Issue one query, then check the counters moved.
	resp2, body := postJSON(t, ts.URL+"/v1/query", adsketch.Request{
		Harmonic: &adsketch.HarmonicQuery{Nodes: []int32{5, 5, 9}},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp2.StatusCode, body)
	}

	resp3, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var st statszBody
	if err := json.NewDecoder(resp3.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Kind != "uniform" || st.Nodes != 400 || st.K != 8 || st.FormatVersion != adsketch.SketchFormatVersion {
		t.Errorf("statsz metadata: %+v", st)
	}
	if st.Queries != 1 || st.Batches != 1 || st.Failures != 0 {
		t.Errorf("statsz counters: %+v", st)
	}
	if st.Cache.Shards != 4 || st.Cache.Built == 0 || st.Cache.Hits+st.Cache.Misses == 0 {
		t.Errorf("statsz cache: %+v", st.Cache)
	}
}
