package main

// End-to-end tests of the dataset catalog: the admin endpoints, dataset
// routing over HTTP, and the acceptance scenario — continuous query load
// against a live server while a rebuilt v3 sketch file is hot-swapped
// in, with zero failed requests and an atomic flip to the new answers.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adsketch"
)

// buildV3File builds a 400-node set with the given seed and writes it as
// a columnar v3 file, returning the path and an Engine over the same
// sketches for expected answers.
func buildV3File(t *testing.T, dir, name string, seed uint64) (string, *adsketch.Engine) {
	t.Helper()
	g := adsketch.PreferentialAttachment(400, 3, 7)
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adsketch.WriteSketchSetV3(f, set); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	return path, eng
}

// catalogServer serves a fresh catalog with the given default source.
func catalogServer(t *testing.T, src adsketch.Source) (*httptest.Server, *adsketch.Catalog) {
	t.Helper()
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Attach(adsketch.DefaultDataset, src); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(cat).mux())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { cat.Close() })
	return ts, cat
}

// getDatasets fetches and decodes GET /v1/datasets.
func getDatasets(t *testing.T, baseURL string) adsketch.CatalogStats {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st adsketch.CatalogStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/datasets: status %d", resp.StatusCode)
	}
	return st
}

func datasetNamed(t *testing.T, st adsketch.CatalogStats, name string) adsketch.DatasetStats {
	t.Helper()
	for _, ds := range st.Datasets {
		if ds.Name == name {
			return ds
		}
	}
	t.Fatalf("dataset %q not listed in %+v", name, st)
	return adsketch.DatasetStats{}
}

// TestHotSwapZeroDowntime is the acceptance scenario: hammer a server
// with queries while POST /v1/datasets/default swaps a rebuilt v3 file
// in (mmap'd).  Requirements: zero failed requests, every answer matches
// exactly the old or the new version (never anything else), answers flip
// atomically at the swap point, and the old version fully drains (its
// mmap is released only after the last reader) once load stops.
func TestHotSwapZeroDowntime(t *testing.T) {
	dir := t.TempDir()
	pathA, engA := buildV3File(t, dir, "a.v3.ads", 42)
	pathB, engB := buildV3File(t, dir, "b.v3.ads", 1042)
	ts, _ := catalogServer(t, adsketch.MmapSource(pathA))

	ctx := context.Background()
	nodes := []int32{0, 17, 399}
	wantA, err := engA.Closeness(ctx, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := engB.Closeness(ctx, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	if wantA[0] == wantB[0] {
		t.Fatal("test sets indistinguishable; pick different seeds")
	}
	matches := func(scores, want []float64) bool {
		if len(scores) != len(want) {
			return false
		}
		for i := range want {
			if scores[i] != want[i] {
				return false
			}
		}
		return true
	}
	reqBody, err := json.Marshal(adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: nodes}})
	if err != nil {
		t.Fatal(err)
	}
	query := func() (adsketch.Response, int, error) {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			return adsketch.Response{}, 0, err
		}
		defer resp.Body.Close()
		var out adsketch.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return adsketch.Response{}, resp.StatusCode, err
		}
		return out, resp.StatusCode, nil
	}

	// Before the swap: answers are version A's.
	pre, status, err := query()
	if err != nil || status != http.StatusOK || !matches(pre.Scores, wantA) {
		t.Fatalf("pre-swap query: status %d, err %v, scores %v (want %v)", status, err, pre.Scores, wantA)
	}

	// Continuous load: every response must be a 200 matching exactly one
	// version's answers.
	var failed, oldAnswers, newAnswers, other atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, status, err := query()
				switch {
				case err != nil || status != http.StatusOK || resp.Error != "":
					failed.Add(1)
				case matches(resp.Scores, wantA):
					oldAnswers.Add(1)
				case matches(resp.Scores, wantB):
					newAnswers.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}

	// Give the load a moment to be in flight, then swap under it.
	time.Sleep(20 * time.Millisecond)
	swapPayload, _ := json.Marshal(swapBody{Path: pathB, Mmap: true})
	resp, err := http.Post(ts.URL+"/v1/datasets/"+adsketch.DefaultDataset, "application/json", bytes.NewReader(swapPayload))
	if err != nil {
		t.Fatal(err)
	}
	var swapped swapResult
	if err := json.NewDecoder(resp.Body).Decode(&swapped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || swapped.Version != 2 {
		t.Fatalf("swap: status %d, result %+v", resp.StatusCode, swapped)
	}

	// The flip is atomic: any query issued after the swap returned must
	// answer from version B.
	post, status, err := query()
	if err != nil || status != http.StatusOK || !matches(post.Scores, wantB) {
		t.Fatalf("post-swap query: status %d, err %v, scores %v (want %v)", status, err, post.Scores, wantB)
	}

	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Errorf("%d requests failed during the hot swap, want 0", failed.Load())
	}
	if other.Load() != 0 {
		t.Errorf("%d answers matched neither version", other.Load())
	}
	if newAnswers.Load() == 0 {
		t.Error("no post-swap answers observed")
	}
	t.Logf("hot swap under load: %d old-version answers, %d new-version answers, 0 failures",
		oldAnswers.Load(), newAnswers.Load())

	// With load stopped, the old version must fully drain: its last
	// reader released, its mmap unmapped (the release hook ran — the
	// registry reports no draining versions and only the live pin-free
	// version 2 remains).
	deadline := time.Now().Add(5 * time.Second)
	for {
		ds := datasetNamed(t, getDatasets(t, ts.URL), adsketch.DefaultDataset)
		if ds.Draining == 0 && ds.Refs == 0 {
			if ds.Version != 2 || !ds.Mmap || !ds.Resident {
				t.Fatalf("drained dataset state: %+v", ds)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old version never drained: %+v", ds)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDatasetAdminEndpoints: list, attach, route by name, swap an
// unknown body, detach, and the error statuses.
func TestDatasetAdminEndpoints(t *testing.T) {
	dir := t.TempDir()
	pathA, engA := buildV3File(t, dir, "a.v3.ads", 42)
	pathB, engB := buildV3File(t, dir, "b.v3.ads", 1042)
	ts, _ := catalogServer(t, adsketch.FileSource(pathA))

	// The default dataset is listed with its serving identity.
	st := getDatasets(t, ts.URL)
	if st.Default != adsketch.DefaultDataset || len(st.Datasets) != 1 {
		t.Fatalf("initial catalog: %+v", st)
	}
	ds := datasetNamed(t, st, adsketch.DefaultDataset)
	if ds.Version != 1 || !ds.Resident || ds.Meta == nil || ds.Meta.TotalNodes != 400 ||
		ds.Path != pathA || ds.FileVersion != adsketch.SketchFormatVersionColumnar {
		t.Fatalf("default dataset stats: %+v", ds)
	}

	// Attach a second dataset through the admin API and query it by name.
	payload, _ := json.Marshal(swapBody{Path: pathB})
	resp, err := http.Post(ts.URL+"/v1/datasets/nightly", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attach nightly: status %d", resp.StatusCode)
	}
	ctx := context.Background()
	wantA, _ := engA.Closeness(ctx, 5)
	wantB, _ := engB.Closeness(ctx, 5)
	queryDataset := func(name string) (adsketch.Response, int) {
		t.Helper()
		body, _ := json.Marshal(adsketch.Request{Dataset: name, Closeness: &adsketch.ClosenessQuery{Nodes: []int32{5}}})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out adsketch.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatal(err)
		}
		return out, resp.StatusCode
	}
	if got, status := queryDataset(""); status != http.StatusOK || got.Scores[0] != wantA[0] {
		t.Errorf("default dataset: status %d, score %v (want %v)", status, got.Scores, wantA)
	}
	if got, status := queryDataset("nightly"); status != http.StatusOK || got.Scores[0] != wantB[0] {
		t.Errorf("nightly dataset: status %d, score %v (want %v)", status, got.Scores, wantB)
	}

	// /statsz reports both datasets and the default's single-set shape.
	sresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var sb statszBody
	if err := json.NewDecoder(sresp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sb.Mode != "single" || sb.Default != adsketch.DefaultDataset || len(sb.Datasets) != 2 || sb.Nodes != 400 {
		t.Errorf("statsz: %+v", sb)
	}

	// Unknown dataset in a query -> 404.
	if _, status := queryDataset("ghost"); status != http.StatusNotFound {
		t.Errorf("unknown dataset query: status %d, want 404", status)
	}
	// Swap with a bad path -> 400, and the dataset keeps serving.
	bad, _ := json.Marshal(swapBody{Path: filepath.Join(dir, "missing.ads")})
	r2, err := http.Post(ts.URL+"/v1/datasets/nightly", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-path swap: status %d, want 400", r2.StatusCode)
	}
	if got, status := queryDataset("nightly"); status != http.StatusOK || got.Scores[0] != wantB[0] {
		t.Errorf("nightly after failed swap: status %d, score %v", status, got.Scores)
	}
	// Missing body path -> 400.
	r3, err := http.Post(ts.URL+"/v1/datasets/nightly", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Errorf("empty-body swap: status %d, want 400", r3.StatusCode)
	}

	// Detach and verify 404s afterwards.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/nightly", nil)
	r4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusOK {
		t.Errorf("detach: status %d", r4.StatusCode)
	}
	if _, status := queryDataset("nightly"); status != http.StatusNotFound {
		t.Errorf("query after detach: status %d, want 404", status)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/nightly", nil)
	r5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r5.Body.Close()
	if r5.StatusCode != http.StatusNotFound {
		t.Errorf("double detach: status %d, want 404", r5.StatusCode)
	}
}

// TestServerBatchPinsOneVersion: a batch posted over HTTP answers every
// request from one dataset version even when a swap lands mid-batch
// stream — and mixed-dataset batches route each request independently.
func TestServerBatchPinsOneVersion(t *testing.T) {
	dir := t.TempDir()
	pathA, engA := buildV3File(t, dir, "a.v3.ads", 42)
	pathB, engB := buildV3File(t, dir, "b.v3.ads", 1042)
	ts, _ := catalogServer(t, adsketch.FileSource(pathA))
	payload, _ := json.Marshal(swapBody{Path: pathB})
	ctx := context.Background()
	wantA, _ := engA.Closeness(ctx, 9)
	wantB, _ := engB.Closeness(ctx, 9)

	batch := make([]adsketch.Request, 16)
	for i := range batch {
		batch[i] = adsketch.Request{ID: fmt.Sprint(i), Closeness: &adsketch.ClosenessQuery{Nodes: []int32{9}}}
	}
	body, _ := json.Marshal(batch)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("batch post: %v", err)
				return
			}
			var out []adsketch.Response
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil || len(out) != len(batch) {
				t.Errorf("batch decode: %v (%d responses)", err, len(out))
				return
			}
			for i, r := range out {
				if r.Error != "" {
					t.Errorf("batch item %d failed: %s", i, r.Error)
					return
				}
				if r.Scores[0] != wantA[0] && r.Scores[0] != wantB[0] {
					t.Errorf("batch item %d matches neither version", i)
					return
				}
				if r.Scores[0] != out[0].Scores[0] {
					t.Errorf("mixed versions within one batch: item %d", i)
					return
				}
			}
		}
	}()
	for i := 0; i < 10; i++ {
		resp, err := http.Post(ts.URL+"/v1/datasets/"+adsketch.DefaultDataset, "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
}
