package main

// End-to-end tests of the binary wire protocol over real HTTP: a
// binary client must get byte-identical answers to a JSON client, the
// coordinator must negotiate binary framing with workers that advertise
// it, and — the mixed-version guarantee — fall back to JSON against
// workers that don't, without changing a single answer.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"adsketch"
	"adsketch/internal/wire"
)

// postRaw sends one /v1/query body and returns status, content type and
// payload.
func postRaw(t *testing.T, baseURL, contentType string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/query", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), payload
}

// TestBinaryEndpointParity: the same corpus posted as JSON and as a
// binary frame must decode to identical responses, single and batch,
// and the server must advertise the protocol on /v1/meta.
func TestBinaryEndpointParity(t *testing.T) {
	whole, _, _ := buildSplitFiles(t)
	ts, _ := serveFile(t, whole, 0)

	meta, err := http.Get(ts.URL + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	meta.Body.Close()
	if adv := meta.Header.Get(protoHeader); !strings.Contains(adv, wire.ContentType) {
		t.Fatalf("/v1/meta %s = %q, want it to advertise %q", protoHeader, adv, wire.ContentType)
	}

	reqs := e2eRequests()

	// Batch parity.
	jsonBody, err := json.Marshal(reqs)
	if err != nil {
		t.Fatal(err)
	}
	status, ctype, jsonPayload := postRaw(t, ts.URL, "application/json", jsonBody)
	if status != http.StatusOK {
		t.Fatalf("JSON batch: status %d: %s", status, jsonPayload)
	}
	var want []adsketch.Response
	if err := json.Unmarshal(jsonPayload, &want); err != nil {
		t.Fatal(err)
	}

	buf := wire.Get()
	defer buf.Free()
	wire.EncodeRequests(buf, reqs)
	status, ctype, binPayload := postRaw(t, ts.URL, wire.ContentType, buf.B)
	if status != http.StatusOK {
		t.Fatalf("binary batch: status %d: %s", status, binPayload)
	}
	if ctype != wire.ContentType {
		t.Fatalf("binary batch response Content-Type = %q, want %q", ctype, wire.ContentType)
	}
	got, batch, err := wire.DecodeResponses(binPayload)
	if err != nil {
		t.Fatalf("decoding binary batch response: %v", err)
	}
	if !batch {
		t.Fatal("batch request answered with a single-response frame")
	}
	if len(got) != len(want) {
		t.Fatalf("%d binary responses, want %d", len(got), len(want))
	}
	for i := range want {
		wantJSON, _ := json.Marshal(want[i])
		gotJSON, _ := json.Marshal(got[i])
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("request %s: binary differs from JSON:\n  binary %s\n  json   %s", reqs[i].ID, gotJSON, wantJSON)
		}
	}

	// Single-request parity.
	for _, req := range reqs {
		one, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		status, _, jsonOne := postRaw(t, ts.URL, "application/json", one)
		if status != http.StatusOK {
			t.Fatalf("JSON %s: status %d: %s", req.ID, status, jsonOne)
		}
		var wantOne adsketch.Response
		if err := json.Unmarshal(jsonOne, &wantOne); err != nil {
			t.Fatal(err)
		}
		wire.EncodeRequest(buf, &req)
		status, ctype, binOne := postRaw(t, ts.URL, wire.ContentType, buf.B)
		if status != http.StatusOK {
			t.Fatalf("binary %s: status %d: %s", req.ID, status, binOne)
		}
		if ctype != wire.ContentType {
			t.Fatalf("binary %s: response Content-Type = %q", req.ID, ctype)
		}
		gotOne, err := wire.DecodeResponse(binOne)
		if err != nil {
			t.Fatalf("decoding binary %s: %v", req.ID, err)
		}
		wantJSON, _ := json.Marshal(wantOne)
		gotJSON, _ := json.Marshal(gotOne)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("request %s: binary differs from JSON:\n  binary %s\n  json   %s", req.ID, gotJSON, wantJSON)
		}
	}
}

// TestBinaryEndpointErrorsStayJSON: a malformed binary frame is a JSON
// errorBody with an HTTP status, never a binary frame — so any client
// can always parse a failure.
func TestBinaryEndpointErrorsStayJSON(t *testing.T) {
	whole, _, _ := buildSplitFiles(t)
	ts, _ := serveFile(t, whole, 0)

	status, ctype, payload := postRaw(t, ts.URL, wire.ContentType, []byte("not a frame"))
	if status != http.StatusBadRequest {
		t.Fatalf("garbage frame: status %d, want 400", status)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("garbage frame error Content-Type = %q, want JSON", ctype)
	}
	var eb errorBody
	if err := json.Unmarshal(payload, &eb); err != nil || eb.Error == "" {
		t.Fatalf("garbage frame error body %q not a JSON errorBody (%v)", payload, err)
	}

	// A well-formed frame carrying an invalid request errors with the
	// same status and message as its JSON twin.
	bad := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{-1}}}
	buf := wire.Get()
	defer buf.Free()
	wire.EncodeRequest(buf, &bad)
	binStatus, binCtype, binPayload := postRaw(t, ts.URL, wire.ContentType, buf.B)
	jsonBody, _ := json.Marshal(bad)
	jsonStatus, _, jsonPayload := postRaw(t, ts.URL, "application/json", jsonBody)
	if binStatus != jsonStatus {
		t.Fatalf("invalid request: binary status %d, json status %d", binStatus, jsonStatus)
	}
	if !strings.HasPrefix(binCtype, "application/json") {
		t.Fatalf("invalid request error Content-Type = %q, want JSON", binCtype)
	}
	if !bytes.Equal(binPayload, jsonPayload) {
		t.Errorf("invalid request error bodies differ:\n  binary %s\n  json   %s", binPayload, jsonPayload)
	}
}

// TestShardProtocolNegotiation: dialing a binary-capable worker under
// the default config negotiates binary framing; -worker-proto json
// forces the fallback; both transports answer identically.
func TestShardProtocolNegotiation(t *testing.T) {
	_, parts, _ := buildSplitFiles(t)
	worker, _ := serveFile(t, parts[0], 0)

	auto, err := dialShard(worker.URL, clusterDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !auto.binary {
		t.Fatal("dial against an advertising worker did not negotiate binary framing")
	}
	jcfg := clusterDefaults()
	jcfg.workerProto = "json"
	forced, err := dialShard(worker.URL, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if forced.binary {
		t.Fatal("-worker-proto json still negotiated binary framing")
	}

	ctx := context.Background()
	req := adsketch.Request{ID: "own", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{auto.meta.Lo}}}
	a, err := auto.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	j, err := forced.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	aJSON, _ := json.Marshal(a)
	jJSON, _ := json.Marshal(j)
	if !bytes.Equal(aJSON, jJSON) {
		t.Errorf("binary shard call differs from JSON:\n  binary %s\n  json   %s", aJSON, jJSON)
	}

	batch := []adsketch.Request{req, {ID: "sk", Sketch: &adsketch.SketchQuery{Node: auto.meta.Lo}}}
	ab, err := auto.DoBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := forced.DoBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	abJSON, _ := json.Marshal(ab)
	jbJSON, _ := json.Marshal(jb)
	if !bytes.Equal(abJSON, jbJSON) {
		t.Errorf("binary shard batch differs from JSON:\n  binary %s\n  json   %s", abJSON, jbJSON)
	}
}

// legacyWorker fronts a real worker with a proxy that behaves like a
// pre-binary build: no protocol advertisement on /v1/meta, and a 400
// for any binary-framed body.  The returned counter observes how many
// binary requests leaked through the negotiation.
func legacyWorker(t *testing.T, worker *httptest.Server) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	target, err := url.Parse(worker.URL)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	rp.ModifyResponse = func(resp *http.Response) error {
		resp.Header.Del(protoHeader)
		return nil
	}
	var binaryHits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isBinaryContentType(r.Header.Get("Content-Type")) {
			binaryHits.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: invalid character"})
			return
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &binaryHits
}

// TestMixedVersionFallback: a binary-capable coordinator dialing
// JSON-only workers must negotiate down to JSON and keep answering
// byte-identically to a single server — no binary frame may ever reach
// the legacy workers.
func TestMixedVersionFallback(t *testing.T) {
	whole, parts, _ := buildSplitFiles(t)
	single, _ := serveFile(t, whole, 0)

	var legacyURLs []string
	var counters []*atomic.Int64
	for _, p := range parts {
		w, mode := serveFile(t, p, 0)
		if mode != "shard" {
			t.Fatalf("partition served in %q mode", mode)
		}
		legacy, hits := legacyWorker(t, w)
		legacyURLs = append(legacyURLs, legacy.URL)
		counters = append(counters, hits)
	}
	coordBE, _, err := dialWorkers(legacyURLs, clusterDefaults())
	if err != nil {
		t.Fatal(err)
	}
	coord := serveBackend(t, coordBE)

	body, err := json.Marshal(e2eRequests())
	if err != nil {
		t.Fatal(err)
	}
	status, _, wantPayload := postRaw(t, single.URL, "application/json", body)
	if status != http.StatusOK {
		t.Fatalf("single server: status %d: %s", status, wantPayload)
	}
	status, _, gotPayload := postRaw(t, coord.URL, "application/json", body)
	if status != http.StatusOK {
		t.Fatalf("coordinator over legacy workers: status %d: %s", status, gotPayload)
	}
	if !bytes.Equal(gotPayload, wantPayload) {
		t.Errorf("coordinator over legacy workers differs from single server:\n  coordinator %s\n  single      %s",
			gotPayload, wantPayload)
	}

	// The client side of the coordinator may also speak binary — the
	// fallback is per-hop, not end-to-end.
	buf := wire.Get()
	defer buf.Free()
	wire.EncodeRequests(buf, e2eRequests())
	status, ctype, binPayload := postRaw(t, coord.URL, wire.ContentType, buf.B)
	if status != http.StatusOK {
		t.Fatalf("binary client over legacy workers: status %d: %s", status, binPayload)
	}
	if ctype != wire.ContentType {
		t.Fatalf("binary client response Content-Type = %q", ctype)
	}
	resps, _, err := wire.DecodeResponses(binPayload)
	if err != nil {
		t.Fatal(err)
	}
	reenc, err := json.Marshal(resps)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, bytes.TrimSpace(wantPayload)) {
		t.Errorf("binary client answers over legacy workers differ:\n  binary %s\n  single %s", reenc, wantPayload)
	}

	for i, hits := range counters {
		if n := hits.Load(); n != 0 {
			t.Errorf("legacy worker %d received %d binary-framed requests; negotiation leaked", i, n)
		}
	}
}
