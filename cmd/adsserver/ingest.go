package main

import (
	"encoding/json"
	"log"
	"sort"
	"sync"

	"adsketch"
)

// The streaming-ingest tier of adsserver: with -ingest, POST
// /v1/ingest/{dataset} accepts JSON edge batches, feeds them to a
// per-dataset incremental sketch maintainer (created lazily from the
// empty graph on first use), and publishes frozen versions into the
// serving catalog every -freeze-every edges — zero-downtime hot-swaps,
// so concurrent queries always answer from the last published version.

// ingestConfig carries the -ingest* flags into the manager.
type ingestConfig struct {
	freezeEvery int
	k           int
	seed        uint64
	directed    bool
	dir         string
	mmap        bool
}

// ingestManager owns one Ingestor per ingest dataset.  Creation is lazy:
// the first batch POSTed to a name creates an empty-graph ingestor
// publishing under that name.
type ingestManager struct {
	cfg ingestConfig
	cat *adsketch.Catalog

	mu        sync.Mutex
	ingestors map[string]*adsketch.Ingestor // guarded by mu
}

func newIngestManager(cat *adsketch.Catalog, cfg ingestConfig) *ingestManager {
	return &ingestManager{cfg: cfg, cat: cat, ingestors: make(map[string]*adsketch.Ingestor)}
}

// get returns the dataset's ingestor, creating it on first use.
func (im *ingestManager) get(name string) (*adsketch.Ingestor, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if ing, ok := im.ingestors[name]; ok {
		return ing, nil
	}
	opts := []adsketch.IngestorOption{
		adsketch.WithPublish(im.cat, name),
		adsketch.WithFreezeEvery(im.cfg.freezeEvery),
	}
	if im.cfg.dir != "" {
		opts = append(opts, adsketch.WithPublishDir(im.cfg.dir))
		if im.cfg.mmap {
			opts = append(opts, adsketch.WithPublishMmap())
		}
	}
	ing, err := adsketch.NewEmptyIngestor(im.cfg.directed, im.cfg.k, im.cfg.seed, opts...)
	if err != nil {
		return nil, err
	}
	im.ingestors[name] = ing
	log.Printf("adsserver: ingest dataset %q created (k=%d seed=%d directed=%v freeze-every=%d)",
		name, im.cfg.k, im.cfg.seed, im.cfg.directed, im.cfg.freezeEvery)
	return ing, nil
}

// stats snapshots every ingestor, ordered by dataset name.
func (im *ingestManager) stats() []adsketch.IngestorStats {
	im.mu.Lock()
	defer im.mu.Unlock()
	out := make([]adsketch.IngestorStats, 0, len(im.ingestors))
	for _, ing := range im.ingestors {
		out = append(out, ing.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}

// wireEdge is one edge of an ingest batch; "w" omitted or <= 0 means a
// unit-length edge.
type wireEdge struct {
	U int32   `json:"u"`
	V int32   `json:"v"`
	W float64 `json:"w,omitempty"`
}

// ingestBody is the POST /v1/ingest/{dataset} payload.  A bare JSON
// array of edges is accepted as shorthand for {"edges": [...]}.
type ingestBody struct {
	Edges []wireEdge `json:"edges"`
	// Freeze forces a freeze-and-publish after the batch, regardless of
	// the -freeze-every threshold.
	Freeze bool `json:"freeze,omitempty"`
}

// ingestResult is the POST /v1/ingest/{dataset} response.
type ingestResult struct {
	Dataset  string `json:"dataset"`
	Accepted int    `json:"accepted"`
	Pending  int64  `json:"pending_edges"`
	Freezes  int64  `json:"freezes"`
	Version  int    `json:"version,omitempty"`
}

// parseIngestBody decodes either body shape.
func parseIngestBody(body []byte) (ingestBody, error) {
	var ib ingestBody
	for _, c := range body {
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			continue
		}
		if c == '[' {
			err := json.Unmarshal(body, &ib.Edges)
			return ib, err
		}
		break
	}
	err := json.Unmarshal(body, &ib)
	return ib, err
}
