package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"adsketch"
)

// ejectAfter is how many consecutive probe failures eject a worker.  One
// blip (a dropped connection, a long GC pause) should not take a healthy
// worker out of rotation; two in a row is a pattern.
const ejectAfter = 2

// probedShard wraps a remote worker with health state.  While the
// worker is ejected, calls fail immediately with ErrShardUnavailable
// instead of waiting out a connection timeout — the coordinator's retry
// chain then falls through to the partition's replica (if any) without
// burning the query's latency budget, and the partial-failure policy
// sees a clean, classified error.
type probedShard struct {
	*httpShard

	healthy atomic.Bool  // false = ejected from rotation
	fails   atomic.Int32 // consecutive probe failures
	ejects  atomic.Int64 // lifetime eject transitions
}

func newProbedShard(s *httpShard) *probedShard {
	p := &probedShard{httpShard: s}
	p.healthy.Store(true)
	return p
}

func (p *probedShard) unavailable() error {
	return fmt.Errorf("worker %s is ejected (failed %d health probes): %w",
		p.base, p.fails.Load(), adsketch.ErrShardUnavailable)
}

func (p *probedShard) Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error) {
	if !p.healthy.Load() {
		return adsketch.Response{}, p.unavailable()
	}
	return p.httpShard.Do(ctx, req)
}

func (p *probedShard) DoBatch(ctx context.Context, reqs []adsketch.Request) ([]adsketch.Response, error) {
	if !p.healthy.Load() {
		return nil, p.unavailable()
	}
	return p.httpShard.DoBatch(ctx, reqs)
}

// observe folds one probe result into the shard's health state and
// reports whether the state flipped.
func (p *probedShard) observe(err error) (flipped bool) {
	if err == nil {
		p.fails.Store(0)
		return p.healthy.CompareAndSwap(false, true)
	}
	if p.fails.Add(1) >= ejectAfter && p.healthy.CompareAndSwap(true, false) {
		p.ejects.Add(1)
		return true
	}
	return false
}

// prober polls every worker's /healthz on a fixed interval, ejecting
// workers that fail ejectAfter consecutive probes and readmitting them
// on the first success.
type prober struct {
	shards   []*probedShard
	interval time.Duration
	client   *http.Client
	stop     chan struct{}
	done     chan struct{}
}

func startProber(shards []*probedShard, interval time.Duration) *prober {
	p := &prober{
		shards:   shards,
		interval: interval,
		client:   &http.Client{Timeout: interval},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *prober) run() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

// probeAll checks every worker once and applies eject/readmit
// transitions.  It is the prober's tick body, exposed for tests.
func (p *prober) probeAll() {
	for _, s := range p.shards {
		err := p.probe(s.base)
		if s.observe(err) {
			if err != nil {
				log.Printf("adsserver: worker %s ejected: %v", s.base, err)
			} else {
				log.Printf("adsserver: worker %s readmitted", s.base)
			}
		}
	}
}

// probe performs one /healthz check against a worker base URL.
func (p *prober) probe(base string) error {
	resp, err := p.client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}

func (p *prober) halt() {
	close(p.stop)
	<-p.done
}

// workerHealth is the /statsz view of one worker's probe state.
type workerHealth struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Fails     int32  `json:"consecutive_fails,omitempty"`
	Ejections int64  `json:"ejections,omitempty"`
}

func (p *prober) health() []workerHealth {
	out := make([]workerHealth, len(p.shards))
	for i, s := range p.shards {
		out[i] = workerHealth{
			URL:       s.base,
			Healthy:   s.healthy.Load(),
			Fails:     s.fails.Load(),
			Ejections: s.ejects.Load(),
		}
	}
	return out
}
