package main

// Failure-path tests of the distributed topology: worker error statuses
// surviving the coordinator hop, dial and probe behavior, injected
// faults, and the degraded serving modes when a worker dies mid-run.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adsketch"
)

func TestShardStatusErrMappings(t *testing.T) {
	cases := []struct {
		status int
		want   error
	}{
		{http.StatusBadRequest, adsketch.ErrBadRequest},
		{http.StatusNotFound, adsketch.ErrUnknownDataset},
		{http.StatusConflict, adsketch.ErrDatasetExists},
		{http.StatusUnprocessableEntity, adsketch.ErrUnsupportedQuery},
		{http.StatusServiceUnavailable, adsketch.ErrShardUnavailable},
	}
	for _, tc := range cases {
		payload, _ := json.Marshal(errorBody{Error: "boom"})
		err := shardStatusErr(tc.status, payload)
		if !errors.Is(err, tc.want) {
			t.Errorf("status %d: err = %v, want %v", tc.status, err, tc.want)
		}
		if !strings.Contains(err.Error(), "boom") {
			t.Errorf("status %d: worker message lost: %v", tc.status, err)
		}
		// The round trip must be lossless: the sentinel maps back to the
		// same status it came from.
		if got := statusFor(err); got != tc.status {
			t.Errorf("status %d: statusFor(shardStatusErr(...)) = %d", tc.status, got)
		}
	}
	// An unmapped status stays a plain error (and a 500 on re-serve),
	// and a non-JSON payload is carried verbatim.
	err := shardStatusErr(http.StatusTeapot, []byte("<html>pot</html>"))
	if !strings.Contains(err.Error(), "418") || !strings.Contains(err.Error(), "<html>pot</html>") {
		t.Errorf("unmapped status error: %v", err)
	}
	if got := statusFor(err); got != http.StatusInternalServerError {
		t.Errorf("statusFor(unmapped) = %d, want 500", got)
	}
}

// fakeWorkerMeta is a /v1/meta payload claiming the whole node space, so
// a single fake worker passes coordinator validation.
func fakeWorkerMeta() adsketch.ShardMeta {
	return adsketch.ShardMeta{
		Index: 0, Count: 1, Lo: 0, Hi: 400, TotalNodes: 400,
		K: 8, Kind: adsketch.KindUniform, Flavor: adsketch.FlavorBottomK,
	}
}

// fakeWorker serves a real /v1/meta and delegates /v1/query to fn.
func fakeWorker(t *testing.T, fn http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, fakeWorkerMeta())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/query", fn)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestHTTPShardErrorPaths(t *testing.T) {
	fastDial := clusterDefaults()
	fastDial.dialRetries = 0

	t.Run("malformed worker JSON", func(t *testing.T) {
		ts := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"scores": [1.0,`)) // cut off mid-payload
		})
		s, err := dialShard(ts.URL, fastDial)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Do(context.Background(), adsketch.Request{}); err == nil ||
			!strings.Contains(err.Error(), "decoding worker response") {
			t.Errorf("Do over truncated JSON: %v", err)
		}
		if _, err := s.DoBatch(context.Background(), nil); err == nil ||
			!strings.Contains(err.Error(), "decoding worker batch response") {
			t.Errorf("DoBatch over truncated JSON: %v", err)
		}
	})

	t.Run("non-JSON error payload", func(t *testing.T) {
		ts := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "proxy says no", http.StatusBadRequest)
		})
		s, err := dialShard(ts.URL, fastDial)
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Do(context.Background(), adsketch.Request{})
		if !errors.Is(err, adsketch.ErrBadRequest) || !strings.Contains(err.Error(), "proxy says no") {
			t.Errorf("plain-text 400: %v", err)
		}
	})

	t.Run("body truncated at the 64MB cap", func(t *testing.T) {
		if testing.Short() {
			t.Skip("writes a 64MB response")
		}
		// A response larger than the read cap must surface as a decode
		// error, not an OOM or a silently short answer: the reader stops
		// at 64MB, leaving the JSON array unterminated.
		pad := bytes.Repeat([]byte(" "), 1<<20)
		ts := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("["))
			for i := 0; i < 65; i++ {
				w.Write(pad)
			}
			w.Write([]byte("]"))
		})
		s, err := dialShard(ts.URL, fastDial)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.DoBatch(context.Background(), nil); err == nil ||
			!strings.Contains(err.Error(), "decoding worker batch response") {
			t.Errorf("oversized body: %v", err)
		}
	})
}

// TestCrossHopStatusPreservation drives a typed worker failure through a
// real coordinator server and asserts the client sees the original
// status: worker -> httpShard sentinel -> coordinator -> statusFor.
func TestCrossHopStatusPreservation(t *testing.T) {
	for _, status := range []int{
		http.StatusBadRequest,
		http.StatusNotFound,
		http.StatusConflict,
		http.StatusUnprocessableEntity,
		http.StatusServiceUnavailable,
	} {
		worker := fakeWorker(t, func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, status, errorBody{Error: fmt.Sprintf("worker rejects with %d", status)})
		})
		cfg := clusterDefaults()
		cfg.dialRetries = 0
		cfg.shardRetries = 0 // one attempt: 503s would otherwise retry
		be, _, err := dialWorkers([]string{worker.URL}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		coord := serveBackend(t, be)
		body, _ := json.Marshal(adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}}})
		resp, err := http.Post(coord.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != status {
			t.Errorf("worker %d surfaced as %d (%s)", status, resp.StatusCode, eb.Error)
		}
		if !strings.Contains(eb.Error, fmt.Sprintf("worker rejects with %d", status)) {
			t.Errorf("worker %d: message lost across the hop: %q", status, eb.Error)
		}
	}
}

func TestProberEjectsAndReadmits(t *testing.T) {
	var sick atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, fakeWorkerMeta())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "dead"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cfg := clusterDefaults()
	cfg.dialRetries = 0
	s, err := dialShard(ts.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := newProbedShard(s)
	pr := &prober{shards: []*probedShard{ps}, client: &http.Client{Timeout: time.Second}}

	// Healthy worker: probing is a no-op.
	pr.probeAll()
	if !ps.healthy.Load() {
		t.Fatal("healthy worker ejected")
	}

	// One failed probe is a blip; the second in a row ejects.
	sick.Store(true)
	pr.probeAll()
	if !ps.healthy.Load() {
		t.Fatal("worker ejected after a single failed probe")
	}
	pr.probeAll()
	if ps.healthy.Load() {
		t.Fatal("worker not ejected after consecutive failed probes")
	}
	// An ejected worker fails fast with the unavailability sentinel
	// instead of opening a connection.
	if _, err := ps.Do(context.Background(), adsketch.Request{}); !errors.Is(err, adsketch.ErrShardUnavailable) {
		t.Errorf("ejected worker Do: %v", err)
	}
	h := pr.health()
	if len(h) != 1 || h[0].Healthy || h[0].Ejections != 1 || h[0].Fails < ejectAfter {
		t.Errorf("health report: %+v", h)
	}

	// The first successful probe readmits.
	sick.Store(false)
	pr.probeAll()
	if !ps.healthy.Load() {
		t.Fatal("recovered worker not readmitted")
	}
	if _, err := ps.Do(context.Background(), adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}}}); errors.Is(err, adsketch.ErrShardUnavailable) {
		t.Errorf("readmitted worker still fails fast: %v", err)
	}
}

func TestFaultInjectionEndpoint(t *testing.T) {
	whole, _, _ := buildSplitFiles(t)
	cat, _, err := buildCatalog(whole, "", 0, false, nil, 0, clusterDefaults())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	srv := newServer(cat)
	srv.faultInject = true
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	query, _ := json.Marshal(adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}}})
	post := func(path string, body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// Dead: queries and health probes answer 503 until cleared.
	if st, _ := post("/debugz/fault", []byte(`{"dead":true}`)); st != http.StatusOK {
		t.Fatalf("setting fault: status %d", st)
	}
	if st, body := post("/v1/query", query); st != http.StatusServiceUnavailable {
		t.Errorf("query on dead server: status %d (%s)", st, body)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz on dead server: status %d", hz.StatusCode)
	}

	// Latency: queries still succeed, delayed by the injected amount.
	if st, _ := post("/debugz/fault", []byte(`{"latency_ms":50}`)); st != http.StatusOK {
		t.Fatalf("setting latency fault: status %d", st)
	}
	start := time.Now()
	if st, body := post("/v1/query", query); st != http.StatusOK {
		t.Errorf("query on slow server: status %d (%s)", st, body)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("injected latency not applied: query took %v", elapsed)
	}

	// The current state is readable, and {} clears every fault.
	resp, err := http.Get(ts.URL + "/debugz/fault")
	if err != nil {
		t.Fatal(err)
	}
	var fb faultBody
	json.NewDecoder(resp.Body).Decode(&fb)
	resp.Body.Close()
	if fb.Dead || fb.LatencyMS != 50 {
		t.Errorf("fault state: %+v", fb)
	}
	if st, _ := post("/debugz/fault", []byte(`{}`)); st != http.StatusOK {
		t.Fatal("clearing faults failed")
	}
	if st, _ := post("/v1/query", query); st != http.StatusOK {
		t.Errorf("query after clearing faults: status %d", st)
	}

	// Without -fault-inject the endpoint does not exist.
	plain := httptest.NewServer(newServer(cat).mux())
	t.Cleanup(plain.Close)
	resp2, err := http.Post(plain.URL+"/debugz/fault", "application/json", bytes.NewReader([]byte(`{"dead":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("fault endpoint exposed without -fault-inject: status %d", resp2.StatusCode)
	}
}

// splitFilesN saves an n-way split of a fresh 400-node set.
func splitFilesN(t *testing.T, n int) []string {
	t.Helper()
	g := adsketch.PreferentialAttachment(400, 3, 7)
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	split, err := adsketch.SplitSketchSet(set, n)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := make([]string, len(split))
	for i, p := range split {
		name := filepath.Join(dir, fmt.Sprintf("part%d.ads", i))
		pf, err := os.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.WriteTo(pf); err != nil {
			t.Fatal(err)
		}
		pf.Close()
		paths[i] = name
	}
	return paths
}

// TestDeadWorkerDegradedServing is the acceptance scenario: a 3-worker
// topology loses one worker mid-run.  Under the partial policy the
// coordinator keeps answering (degraded, flagged); under the default
// fail policy it returns a typed error naming the dead shard.
func TestDeadWorkerDegradedServing(t *testing.T) {
	parts := splitFilesN(t, 3)
	var workers []*httptest.Server
	var urls []string
	for _, p := range parts {
		w, mode := serveFile(t, p, 0)
		if mode != "shard" {
			t.Fatalf("partition served in %q mode", mode)
		}
		workers = append(workers, w)
		urls = append(urls, w.URL)
	}
	cfg := clusterDefaults()
	cfg.shardTimeout = 5 * time.Second
	cfg.shardRetries = 1
	cfg.retryBackoff = time.Millisecond
	be, _, err := dialWorkers(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord := serveBackend(t, be)

	post := func(req adsketch.Request) (int, adsketch.Response, errorBody) {
		t.Helper()
		body, _ := json.Marshal(req)
		hr, err := http.Post(coord.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(hr.Body)
		var resp adsketch.Response
		var eb errorBody
		if hr.StatusCode == http.StatusOK {
			if err := json.Unmarshal(buf.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
		} else {
			json.Unmarshal(buf.Bytes(), &eb)
		}
		return hr.StatusCode, resp, eb
	}

	topk := adsketch.Request{TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 10}}
	st, healthy, _ := post(topk)
	if st != http.StatusOK || healthy.Partial {
		t.Fatalf("healthy topology: status %d, partial %v", st, healthy.Partial)
	}

	// Worker 1 dies mid-run.  Its owned range comes from its own meta,
	// not from assumptions about the split arithmetic.
	deadMeta, err := dialShard(urls[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := deadMeta.meta.Lo, deadMeta.meta.Hi
	workers[1].Close()

	// Default fail policy: a typed error naming the dead shard.
	st, _, eb := post(topk)
	if st == http.StatusOK {
		t.Fatal("fail policy answered OK with a dead worker")
	}
	if !strings.Contains(eb.Error, "shard 1") {
		t.Errorf("fail-policy error does not name the dead shard: %q", eb.Error)
	}

	// Partial policy: every query answers 200, degraded and flagged.
	partial := topk
	partial.Policy = adsketch.PolicyPartial
	partial.Explain = true
	st, resp, eb := post(partial)
	if st != http.StatusOK {
		t.Fatalf("partial-policy topk: status %d (%s)", st, eb.Error)
	}
	if !resp.Partial || len(resp.Ranking) != 10 {
		t.Errorf("degraded topk: partial=%v, %d members", resp.Partial, len(resp.Ranking))
	}
	if resp.Merge == nil || len(resp.Merge.Failed) != 1 || resp.Merge.Failed[0] != 1 {
		t.Errorf("degraded topk merge meta: %+v", resp.Merge)
	}
	for _, r := range resp.Ranking {
		if r.Node >= lo && r.Node < hi {
			t.Errorf("ranking includes node %d owned by the dead worker", r.Node)
		}
	}

	mid := (lo + hi) / 2 // a node the dead worker owned
	st, resp, eb = post(adsketch.Request{
		Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, mid, 399}},
		Policy:    adsketch.PolicyPartial,
	})
	if st != http.StatusOK {
		t.Fatalf("partial-policy closeness: status %d (%s)", st, eb.Error)
	}
	if !resp.Partial || len(resp.Missing) != 1 || resp.Missing[0] != mid {
		t.Errorf("degraded closeness: partial=%v, missing=%v", resp.Partial, resp.Missing)
	}
	if resp.Scores[0] == 0 || resp.Scores[1] != 0 || resp.Scores[2] == 0 {
		t.Errorf("degraded scores: %v", resp.Scores)
	}

	// The coordinator's own error accounting shows up on /statsz.
	sr, err := http.Get(coord.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats statszBody
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if len(stats.Scatter) != 3 {
		t.Fatalf("scatter stats for %d partitions, want 3", len(stats.Scatter))
	}
	if s := stats.Scatter[1]; s.Errors == 0 || s.Failures == 0 || s.Retries == 0 {
		t.Errorf("dead shard scatter stats: %+v", s)
	}
	if s := stats.Scatter[0]; s.Failures != 0 {
		t.Errorf("healthy shard reports failures: %+v", s)
	}
}
