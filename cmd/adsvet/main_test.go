package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildTool builds the adsvet binary once per test run.
var buildTool = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "adsvet")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "adsvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", &buildError{string(out), err}
	}
	return bin, nil
})

type buildError struct {
	out string
	err error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + e.out }

// repoRoot returns the module root (two levels above cmd/adsvet).
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}

// TestVettoolCleanTree runs the suite over the whole repository through
// the real `go vet -vettool` protocol: the tree must produce zero
// diagnostics, so any future invariant violation fails CI with the
// analyzer's message instead of a golden-test flake.
func TestVettoolCleanTree(t *testing.T) {
	bin, err := buildTool()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported findings on a tree that must be clean:\n%s\n%v", out, err)
	}
}

// TestStandaloneCleanTree checks the driver-based `adsvet ./...` mode
// agrees.
func TestStandaloneCleanTree(t *testing.T) {
	bin, err := buildTool()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("adsvet ./... reported findings on a tree that must be clean:\n%s\n%v", out, err)
	}
}

// TestVettoolSeededViolation seeds an unkeyed wire-header literal and an
// unreleased acquisition into a scratch module and demands adsvet fail
// with pointed diagnostics for both.
func TestVettoolSeededViolation(t *testing.T) {
	bin, err := buildTool()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "encode.go"), `package scratch

type fooHeader struct {
	Magic uint32
	Count uint32
}

func Encode() fooHeader {
	return fooHeader{1, 2}
}

type handle struct{}

func (h *handle) Release()  {}
func (h *handle) Nodes() int { return 0 }

type pool struct{}

func (p *pool) Acquire(name string) (*handle, error) { return nil, nil }

func Leak(p *pool) int {
	h, err := p.Acquire("x")
	if err != nil {
		return 0
	}
	return h.Nodes()
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool must fail on seeded violations, got success:\n%s", out)
	}
	for _, wantMsg := range []string{
		"unkeyed fields in wire-header literal fooHeader",
		"h acquired via Acquire is never released",
	} {
		if !strings.Contains(string(out), wantMsg) {
			t.Errorf("diagnostics missing %q:\n%s", wantMsg, out)
		}
	}
}

// TestHelpListsAnalyzers pins the suite roster surfaced by `adsvet help`.
func TestHelpListsAnalyzers(t *testing.T) {
	bin, err := buildTool()
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "help").CombinedOutput()
	if err != nil {
		t.Fatalf("adsvet help: %v\n%s", err, out)
	}
	for _, name := range []string{"detorder", "refpair", "wireformat", "kindswitch", "lockheld"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("help output missing analyzer %s:\n%s", name, out)
		}
	}
}

// TestRunStandaloneInProcess drives the driver-based mode without a
// subprocess: the repository must be clean, and a scratch module with a
// seeded violation must fail.
func TestRunStandaloneInProcess(t *testing.T) {
	if code := runStandalone(repoRoot(t), []string{"./..."}); code != 0 {
		t.Fatalf("runStandalone on the repository = %d, want 0", code)
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "codec.go"), `package scratch

type wireHeader struct{ A, B uint16 }

func Make() wireHeader { return wireHeader{1, 2} }
`)
	if code := runStandalone(dir, []string{"./..."}); code != 1 {
		t.Fatalf("runStandalone on seeded violation = %d, want 1", code)
	}
	if code := runStandalone(dir, []string{"./does/not/exist"}); code != 1 {
		t.Fatalf("runStandalone on bad pattern = %d, want 1", code)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
