// Command adsvet is the repository's custom vet suite: five analyzers
// (detorder, refpair, wireformat, kindswitch, lockheld) encoding the
// invariants the HIP/ADS correctness and serving claims rest on.  See
// the package docs under internal/analysis/... for what each enforces
// and README.md for the suppression convention.
//
// It runs two ways:
//
//	adsvet [packages]          standalone: load, type-check, analyze
//	go vet -vettool=adsvet ... as a vet tool, speaking the unitchecker
//	                           protocol (-V=full, -flags, <pkg>.cfg)
//
// The vet-tool form is what Makefile and CI use: cmd/go hands the tool
// pre-planned package configs with export data, so the whole tree is
// analyzed with build-cache sharing.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"adsketch/internal/analysis"
	"adsketch/internal/analysis/detorder"
	"adsketch/internal/analysis/driver"
	"adsketch/internal/analysis/kindswitch"
	"adsketch/internal/analysis/lockheld"
	"adsketch/internal/analysis/refpair"
	"adsketch/internal/analysis/wireformat"
)

// suite is the full analyzer set, in reporting-name order.
var suite = []*analysis.Analyzer{
	detorder.Analyzer,
	kindswitch.Analyzer,
	lockheld.Analyzer,
	refpair.Analyzer,
	wireformat.Analyzer,
}

func main() {
	args := os.Args[1:]

	// Protocol probes from cmd/go come first and alone.
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		default:
			// Tolerate pass-through vet flags we define none of.
			args = args[1:]
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0]))
	}
	if len(args) == 1 && args[0] == "help" {
		printHelp()
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone("", args))
}

// printVersion emits the tool identity line cmd/go hashes into its
// action IDs: same binary, same ID, cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("adsvet version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

func printHelp() {
	fmt.Println("adsvet: custom static-analysis suite for this repository")
	fmt.Println()
	for _, a := range suite {
		fmt.Printf("  %-11s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("suppress a deliberate exception with: //adsvet:ignore <analyzer> <reason>")
}

// vetConfig is the package configuration cmd/go writes for a vet tool
// (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes one package from a cmd/go-supplied config.
func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "adsvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite uses no cross-package facts, but cmd/go requires the
	// facts file to exist before it trusts the run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("adsvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	imp := driver.NewImporter(fset, func(path string) (string, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return cfg.PackageFile[path], nil
	})
	pkg, info, err := driver.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "adsvet: %v\n", err)
		return 1
	}
	diags, err := analysis.Check(fset, files, pkg, info, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adsvet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	printDiagnostics(fset, diags)
	return 2
}

// runStandalone loads packages through the driver (rooted at dir; "" =
// current directory) and analyzes them.
func runStandalone(dir string, patterns []string) int {
	pkgs, err := driver.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adsvet: %v\n", err)
		return 1
	}
	exit := 0
	for _, p := range pkgs {
		diags, err := analysis.Check(p.Fset, p.Files, p.Pkg, p.TypesInfo, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adsvet: %v\n", err)
			return 1
		}
		if len(diags) > 0 {
			printDiagnostics(p.Fset, diags)
			exit = 1
		}
	}
	return exit
}

func printDiagnostics(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}
