// Benchmark harness: one benchmark per experiment in DESIGN.md, each
// regenerating (a statistically thinned version of) the corresponding
// paper artifact and reporting its headline quantities as custom metrics.
// The full-resolution series (paper run counts) are produced by
// cmd/figures; these benches use reduced run counts so `go test -bench=.`
// finishes in minutes while still exhibiting every qualitative shape.
//
//	E1  BenchmarkFigure2*            Figure 2 panels
//	E2  BenchmarkFigure3*            Figure 3 panels
//	E3  BenchmarkADSSize             Lemma 2.2 sizes
//	E4  BenchmarkHIPvsBasicVariance  Theorem 5.1 factor-2
//	E5  BenchmarkHLLvsHIPConstants   Section 6 constants
//	E6  BenchmarkBaseBTradeoff       Section 5.6 (1+b)/2 factor
//	E8  BenchmarkSizeEstimator       Lemma 8.1
//	E9  BenchmarkMorrisCounter       Section 7
//	E10 BenchmarkQgHIPvsNaive        n/k-fold Q_g variance claim
//	E11 BenchmarkBuilders            Section 3 construction costs
//	E12 BenchmarkANF                 Appendix B.1 readouts
//
// (E7, the permutation-vs-HIP crossover, is part of the Figure 2 output.)
package adsketch_test

import (
	"context"
	"math"
	"testing"

	"adsketch"
	"adsketch/internal/core"
	"adsketch/internal/counter"
	"adsketch/internal/graph"
	"adsketch/internal/hll"
	"adsketch/internal/rank"
	"adsketch/internal/simulate"
	"adsketch/internal/sketch"
	"adsketch/internal/stats"
	"adsketch/internal/stream"
)

// E1: Figure 2.  Reports the plateau NRMSE of each estimator and the
// basic/HIP error ratio (paper: ~sqrt(2)).
func benchFigure2(b *testing.B, k, maxn, runs int) {
	var panel *stats.Panel
	for i := 0; i < b.N; i++ {
		panel = simulate.Figure2(simulate.Fig2Config{K: k, MaxN: maxn, Runs: runs, Seed: 42})
	}
	byName := map[string]*stats.Series{}
	for _, s := range panel.Series {
		byName[s.Name] = s
	}
	top := float64(maxn)
	basic := byName[simulate.SeriesBottomBasic].Point(top).NRMSE()
	hip := byName[simulate.SeriesBottomHIP].Point(top).NRMSE()
	b.ReportMetric(basic, "basic-NRMSE")
	b.ReportMetric(hip, "HIP-NRMSE")
	b.ReportMetric(basic/hip, "basic/HIP")
	b.ReportMetric(byName[simulate.SeriesPerm].Point(top).NRMSE(), "perm-NRMSE")
	b.ReportMetric(byName[simulate.SeriesKPartBasic].Point(top).NRMSE(), "kpart-NRMSE")
	b.ReportMetric(sketch.BasicCV(k), "ref-basic-CV")
	b.ReportMetric(sketch.HIPCV(k), "ref-HIP-CV")
}

func BenchmarkFigure2_K5(b *testing.B)  { benchFigure2(b, 5, 10000, 200) }
func BenchmarkFigure2_K10(b *testing.B) { benchFigure2(b, 10, 10000, 150) }
func BenchmarkFigure2_K50(b *testing.B) { benchFigure2(b, 50, 50000, 60) }

// E2: Figure 3.  Reports plateau NRMSE of HLL raw/corrected/HIP.
func benchFigure3(b *testing.B, k, maxn, runs int) {
	var panel *stats.Panel
	for i := 0; i < b.N; i++ {
		panel = simulate.Figure3(simulate.Fig3Config{K: k, MaxN: maxn, Runs: runs, Seed: 5})
	}
	byName := map[string]*stats.Series{}
	for _, s := range panel.Series {
		byName[s.Name] = s
	}
	top := float64(maxn)
	b.ReportMetric(byName[simulate.SeriesHLLRaw].Point(top).NRMSE(), "HLLraw-NRMSE")
	b.ReportMetric(byName[simulate.SeriesHLL].Point(top).NRMSE(), "HLL-NRMSE")
	b.ReportMetric(byName[simulate.SeriesHIP].Point(top).NRMSE(), "HIP-NRMSE")
	b.ReportMetric(sketch.HIPBaseBCV(k, 2), "ref-HIP-analysis")
}

func BenchmarkFigure3_K16(b *testing.B) { benchFigure3(b, 16, 200000, 250) }
func BenchmarkFigure3_K32(b *testing.B) { benchFigure3(b, 32, 200000, 250) }
func BenchmarkFigure3_K64(b *testing.B) { benchFigure3(b, 64, 200000, 150) }

// E3: Lemma 2.2 expected ADS size.  Reports worst relative deviation.
func BenchmarkADSSize(b *testing.B) {
	var rows []simulate.SizeRow
	for i := 0; i < b.N; i++ {
		rows = simulate.SizeTable([]int{1, 5, 10, 50}, []int{1000, 10000}, 200, 3)
	}
	worst := 0.0
	for _, r := range rows {
		if rel := math.Abs(r.Measured-r.Expected) / r.Expected; rel > worst {
			worst = rel
		}
	}
	b.ReportMetric(worst, "worst-rel-dev")
}

// E4: Theorem 5.1 — HIP variance is half the basic estimator's.
func BenchmarkHIPvsBasicVariance(b *testing.B) {
	const k, n, runs = 10, 3000, 400
	var ratio float64
	for i := 0; i < b.N; i++ {
		hip := stats.NewErrAccum(n)
		basic := stats.NewErrAccum(n)
		for run := 0; run < runs; run++ {
			src := rank.NewSource(uint64(run)*40503 + 1)
			sb := core.NewStreamBuilder(0, k)
			for id := int64(0); id < n; id++ {
				sb.Offer(int32(id), float64(id), src.Rank(id))
			}
			hip.Add(sb.HIPEstimate())
			basic.Add(sb.BasicEstimate())
		}
		v1, v2 := basic.NRMSE(), hip.NRMSE()
		ratio = (v1 * v1) / (v2 * v2)
	}
	b.ReportMetric(ratio, "basic/HIP-variance")
}

// E5: Section 6 NRMSE constants.
func BenchmarkHLLvsHIPConstants(b *testing.B) {
	var rows []simulate.ConstantRow
	for i := 0; i < b.N; i++ {
		rows = simulate.HLLConstantsTable([]int{16, 32, 64}, 100000, 250, 13)
	}
	for _, r := range rows {
		switch r.K {
		case 16:
			b.ReportMetric(r.HIPConst, "HIP-const-k16")
			b.ReportMetric(r.HLLConst, "HLL-const-k16")
		case 64:
			b.ReportMetric(r.HIPConst, "HIP-const-k64")
			b.ReportMetric(r.HLLConst, "HLL-const-k64")
			b.ReportMetric(r.Ratio, "HLL/HIP-k64")
		}
	}
}

// E6: Section 5.6 base-b trade-off; reports NRMSE/analysis ratios.
func BenchmarkBaseBTradeoff(b *testing.B) {
	var rows []simulate.BaseBRow
	for i := 0; i < b.N; i++ {
		rows = simulate.BaseBTable([]int{16, 64}, []float64{0, math.Sqrt2, 2}, 20000, 200, 11)
	}
	for _, r := range rows {
		if r.K != 16 {
			continue
		}
		name := "full"
		if r.Base == 2 {
			name = "base2"
		} else if r.Base != 0 {
			name = "sqrt2"
		}
		b.ReportMetric(r.NRMSE/r.Analysis, "meas/analysis-"+name)
	}
}

// E8: Lemma 8.1 size-only estimator — bias and error vs HIP at n=1000.
func BenchmarkSizeEstimator(b *testing.B) {
	const k, n, runs = 10, 1000, 600
	var sizeAcc, hipAcc *stats.ErrAccum
	for i := 0; i < b.N; i++ {
		sizeAcc = stats.NewErrAccum(n)
		hipAcc = stats.NewErrAccum(n)
		for run := 0; run < runs; run++ {
			src := rank.NewSource(uint64(run)*7919 + 5)
			sb := core.NewStreamBuilder(0, k)
			for id := int64(0); id < n; id++ {
				sb.Offer(int32(id), float64(id), src.Rank(id))
			}
			sizeAcc.Add(sb.SizeEstimate())
			hipAcc.Add(sb.HIPEstimate())
		}
	}
	b.ReportMetric(sizeAcc.Bias(), "size-est-bias")
	b.ReportMetric(sizeAcc.NRMSE(), "size-est-NRMSE")
	b.ReportMetric(hipAcc.NRMSE(), "HIP-NRMSE")
}

// E9: Section 7 Morris counters — bias and CV per base.
func BenchmarkMorrisCounter(b *testing.B) {
	const n, runs = 10000, 400
	bases := []float64{2, 1.5, 1.0625}
	names := []string{"b2", "b1.5", "b1.0625"}
	for i := 0; i < b.N; i++ {
		for j, base := range bases {
			acc := stats.NewErrAccum(n)
			for run := 0; run < runs; run++ {
				m := counter.New(base, uint64(run)*6700417+1)
				for x := 0; x < n; x++ {
					m.Increment()
				}
				acc.Add(m.Estimate())
			}
			if i == 0 {
				b.ReportMetric(acc.NRMSE(), "NRMSE-"+names[j])
				b.ReportMetric(math.Sqrt((base-1)/2), "ref-"+names[j])
			}
		}
	}
}

// E10: the up-to-(n/k)-fold Q_g variance claim for concentrated g.
func BenchmarkQgHIPvsNaive(b *testing.B) {
	const k, n, runs = 8, 2000, 300
	gfun := func(dist float64) float64 { return math.Exp(-dist / 5) }
	exact := 0.0
	for i := 0; i < n; i++ {
		exact += gfun(float64(i))
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		hipAcc := stats.NewErrAccum(exact)
		naiveAcc := stats.NewErrAccum(exact)
		for run := 0; run < runs; run++ {
			src := rank.NewSource(uint64(run)*71 + 19)
			sb := core.NewStreamBuilder(0, k)
			for id := int64(0); id < n; id++ {
				sb.Offer(int32(id), float64(id), src.Rank(id))
			}
			hipAcc.Add(core.EstimateQ(sb.ADS(), func(_ int32, d float64) float64 { return gfun(d) }))
			mh := sketch.NewBottomK(k)
			for id := int64(0); id < n; id++ {
				mh.AddFrom(src, id)
			}
			sum := 0.0
			for _, e := range mh.Entries() {
				sum += gfun(float64(e.ID))
			}
			naiveAcc.Add(mh.Estimate() * sum / float64(mh.Len()))
		}
		r := naiveAcc.NRMSE() / hipAcc.NRMSE()
		ratio = r * r
	}
	b.ReportMetric(ratio, "naive/HIP-variance")
	b.ReportMetric(float64(n)/float64(k), "n/k")
}

// E11: Section 3 construction algorithms on representative graphs.
func benchBuilder(b *testing.B, g *graph.Graph, algo adsketch.Algorithm, k int) {
	b.ReportAllocs()
	var set adsketch.SketchSet
	for i := 0; i < b.N; i++ {
		var err error
		set, err = adsketch.Build(g, adsketch.WithK(k), adsketch.WithSeed(42),
			adsketch.WithAlgorithm(algo))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(set.TotalEntries())/float64(g.NumNodes()), "entries/node")
	perEdge := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(g.NumArcs())
	b.ReportMetric(perEdge, "ns/arc")
}

func BenchmarkBuilders(b *testing.B) {
	graphs := map[string]*graph.Graph{
		"ba-5k":   graph.PreferentialAttachment(5000, 4, 7),
		"grid-70": graph.Grid(70, 70),
		"gnp-5k":  graph.GNP(5000, 0.002, false, 7),
		"wgnp-2k": graph.WithRandomWeights(graph.GNP(2000, 0.005, false, 8), 1, 4, 9),
	}
	algos := map[string]adsketch.Algorithm{
		"PrunedDijkstra": adsketch.AlgoPrunedDijkstra,
		"DP":             adsketch.AlgoDP,
		"LocalUpdates":   adsketch.AlgoLocalUpdates,
	}
	for gname, g := range graphs {
		for aname, algo := range algos {
			if algo == adsketch.AlgoDP && g.Weighted() {
				continue
			}
			for _, k := range []int{4, 16} {
				b.Run(gname+"/"+aname+"/k="+itoa(k), func(b *testing.B) {
					benchBuilder(b, g, algo, k)
				})
			}
		}
	}
}

// E12: Appendix B.1 neighborhood function readouts.
func BenchmarkANF(b *testing.B) {
	g := graph.WattsStrogatz(3000, 6, 0.05, 17)
	exact := graph.NeighborhoodFunction(g)
	plateau := float64(exact[len(exact)-1])
	for _, mode := range []adsketch.ANFOptions{
		{K: 64, Seed: 4, Readout: adsketch.ANFBasic},
		{K: 64, Seed: 4, Readout: adsketch.ANFHIP},
	} {
		mode := mode
		b.Run(mode.Readout.String(), func(b *testing.B) {
			var res *adsketch.ANFResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = adsketch.NeighborhoodFunction(g, mode)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.NF[len(res.NF)-1]/plateau-1, "plateau-rel-err")
			b.ReportMetric(adsketch.EffectiveDiameter(res.NF, 0.9), "eff-diameter")
		})
	}
}

// Micro-benchmarks: per-element costs of the hot paths.

func BenchmarkStreamOfferPerElement(b *testing.B) {
	src := rank.NewSource(1)
	sb := core.NewStreamBuilder(0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Offer(int32(i), float64(i), src.Rank(int64(i)))
	}
}

func BenchmarkHIPDistinctAdd(b *testing.B) {
	h := hll.NewHIP(64, rank.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(int64(i))
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	s := hll.New(64, rank.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(int64(i))
	}
}

func BenchmarkMorrisIncrement(b *testing.B) {
	m := counter.New(1.0625, 1)
	for i := 0; i < b.N; i++ {
		m.Increment()
	}
}

func BenchmarkCentralityQuery(b *testing.B) {
	g := graph.PreferentialAttachment(5000, 4, 7)
	set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42))
	if err != nil {
		b.Fatal(err)
	}
	c := adsketch.NewCentrality(set)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Closeness(int32(i % 5000))
	}
}

// Engine serving path: repeated closeness queries hit the cached HIP
// indices instead of rescanning sketches (compare BenchmarkCentralityQuery).
func BenchmarkEngineClosenessCached(b *testing.B) {
	g := graph.PreferentialAttachment(5000, 4, 7)
	set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.TopCloseness(ctx, 1); err != nil { // warm every index
		b.Fatal(err)
	}
	nodes := []int32{1, 17, 4999}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Closeness(ctx, nodes...); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// Parallel builder scaling (Appendix B.4): identical output, lower wall
// clock on multi-core machines.
func BenchmarkParallelBuilder(b *testing.B) {
	g := graph.PreferentialAttachment(5000, 4, 7)
	for _, algo := range []adsketch.Algorithm{adsketch.AlgoPrunedDijkstra, adsketch.AlgoPrunedDijkstraParallel} {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42),
					adsketch.WithAlgorithm(algo)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// HIPIndex accelerates repeated neighborhood queries.
func BenchmarkHIPIndexQuery(b *testing.B) {
	g := graph.PreferentialAttachment(2000, 4, 7)
	set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42))
	if err != nil {
		b.Fatal(err)
	}
	idx := adsketch.NewHIPIndex(set.SketchOf(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Neighborhood(float64(i % 7))
	}
}

// Distinct counters on a heavy-tailed (Zipf) stream: throughput per event.
func BenchmarkDistinctCountersZipf(b *testing.B) {
	counters := map[string]stream.Distinct{
		"hip-hll":  adsketch.NewHIPDistinct(64, 5),
		"bottom-k": adsketch.NewBottomKDistinct(64, 5),
	}
	for name, c := range counters {
		c := c
		b.Run(name, func(b *testing.B) {
			z := stream.NewZipf(1000000, 1.1, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Add(z.Next())
			}
		})
	}
}
