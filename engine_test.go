package adsketch_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"adsketch"
)

func buildEngine(t *testing.T, opts ...adsketch.EngineOption) (*adsketch.Graph, adsketch.SketchSet, *adsketch.Engine) {
	t.Helper()
	g := adsketch.PreferentialAttachment(400, 3, 6)
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adsketch.NewEngine(set, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return g, set, eng
}

// Engine batch answers must be bit-for-bit identical to the per-call
// estimators on the same sketches.
func TestEngineMatchesPerCallEstimators(t *testing.T) {
	_, set, eng := buildEngine(t)
	c := adsketch.NewCentrality(set)
	ctx := context.Background()
	nodes := make([]int32, set.NumNodes())
	for i := range nodes {
		nodes[i] = int32(i)
	}

	clos, err := eng.Closeness(ctx, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	harm, err := eng.Harmonic(ctx, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := eng.NeighborhoodSizes(ctx, 2, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	qfun := func(node int32, dist float64) float64 { return math.Exp2(-dist) * float64(node%3) }
	qs, err := eng.EstimateQBatch(ctx, qfun, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range nodes {
		if got, want := clos[v], c.Closeness(v); got != want {
			t.Fatalf("closeness(%d) = %v, per-call %v", v, got, want)
		}
		if got, want := harm[v], c.Harmonic(v); got != want {
			t.Fatalf("harmonic(%d) = %v, per-call %v", v, got, want)
		}
		if got, want := sizes[v], adsketch.EstimateNeighborhoodHIP(set.SketchOf(v), 2); got != want {
			t.Fatalf("|N_2(%d)| = %v, per-call %v", v, got, want)
		}
		if got, want := qs[v], adsketch.EstimateQ(set.SketchOf(v), qfun); got != want {
			t.Fatalf("Q(%d) = %v, per-call %v", v, got, want)
		}
	}

	top, err := eng.TopCloseness(ctx, 25)
	if err != nil {
		t.Fatal(err)
	}
	want := c.TopCloseness(25)
	if len(top) != len(want) {
		t.Fatalf("TopCloseness returned %d entries, want %d", len(top), len(want))
	}
	for i := range top {
		if top[i] != want[i] {
			t.Fatalf("TopCloseness[%d] = %+v, per-call %+v", i, top[i], want[i])
		}
	}
}

// The Engine serves weighted and approximate sets through the same
// interface.
func TestEngineOverAllSetKinds(t *testing.T) {
	g := adsketch.PreferentialAttachment(120, 3, 2)
	beta := make([]float64, 120)
	for i := range beta {
		beta[i] = 1 + float64(i%4)
	}
	gw := adsketch.WithRandomWeights(adsketch.GNP(120, 0.05, false, 3), 1, 4, 4)
	uniform, err := adsketch.Build(g, adsketch.WithK(6), adsketch.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := adsketch.Build(g, adsketch.WithK(6), adsketch.WithSeed(1), adsketch.WithNodeWeights(beta))
	if err != nil {
		t.Fatal(err)
	}
	approx, err := adsketch.Build(gw, adsketch.WithK(6), adsketch.WithSeed(1), adsketch.WithApproxEps(0.2))
	if err != nil {
		t.Fatal(err)
	}
	for name, set := range map[string]adsketch.SketchSet{
		"uniform": uniform, "weighted": weighted, "approx": approx,
	} {
		eng, err := adsketch.NewEngine(set)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := eng.NeighborhoodSizes(context.Background(), math.Inf(1), 0, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, x := range got {
			if x <= 0 {
				t.Errorf("%s: estimate[%d] = %g", name, i, x)
			}
		}
	}
}

func TestEngineBadInputs(t *testing.T) {
	_, set, eng := buildEngine(t)
	ctx := context.Background()
	if _, err := eng.Closeness(ctx, int32(set.NumNodes())); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := eng.Closeness(ctx, -1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := adsketch.NewEngine(set, adsketch.WithQueryParallelism(-2)); !errors.Is(err, adsketch.ErrBadOption) {
		t.Errorf("WithQueryParallelism(-2) error = %v, want ErrBadOption", err)
	}
	if _, err := adsketch.NewEngine(set, nil); !errors.Is(err, adsketch.ErrBadOption) {
		t.Errorf("nil EngineOption error = %v, want ErrBadOption", err)
	}
	out, err := eng.Closeness(ctx) // empty batch
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch = (%v, %v)", out, err)
	}
	if _, err := adsketch.NewEngine(set, adsketch.WithShards(-1)); !errors.Is(err, adsketch.ErrBadOption) {
		t.Errorf("WithShards(-1) error = %v, want ErrBadOption", err)
	}
}

// The sharded cache must be invisible to results and visible in stats.
func TestEngineShardsAndStats(t *testing.T) {
	_, set, base := buildEngine(t)
	ctx := context.Background()
	nodes := make([]int32, set.NumNodes())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	want, err := base.Closeness(ctx, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 16} {
		eng, err := adsketch.NewEngine(set, adsketch.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Closeness(ctx, nodes...)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("shards=%d: closeness(%d) = %v, want %v", shards, v, got[v], want[v])
			}
		}
		st := eng.CacheStats()
		if st.Shards != shards || st.Slots != set.NumNodes() || st.Built != set.NumNodes() {
			t.Errorf("shards=%d: stats %+v", shards, st)
		}
		if _, err := eng.Closeness(ctx, 0, 1, 2); err != nil {
			t.Fatal(err)
		}
		if st2 := eng.CacheStats(); st2.Hits < st.Hits+3 {
			t.Errorf("shards=%d: hits did not advance: %+v -> %+v", shards, st, st2)
		}
	}
}

// Top-N selection edge cases around the bounded-heap path.
func TestEngineTopEdgeCases(t *testing.T) {
	_, set, eng := buildEngine(t)
	ctx := context.Background()
	// n larger than the set clamps to a full ranking.
	all, err := eng.TopCloseness(ctx, set.NumNodes()+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != set.NumNodes() {
		t.Fatalf("overlong n: %d entries, want %d", len(all), set.NumNodes())
	}
	c := adsketch.NewCentrality(set)
	want := c.TopCloseness(set.NumNodes())
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("full ranking[%d] = %+v, want %+v", i, all[i], want[i])
		}
	}
	// n = 1 and n = 0.
	one, err := eng.TopHarmonic(ctx, 1)
	if err != nil || len(one) != 1 {
		t.Fatalf("top-1 = (%v, %v)", one, err)
	}
	if wh := c.TopHarmonic(1); one[0] != wh[0] {
		t.Errorf("top-1 = %+v, want %+v", one[0], wh[0])
	}
	zero, err := eng.TopCloseness(ctx, 0)
	if err != nil || len(zero) != 0 {
		t.Errorf("top-0 = (%v, %v)", zero, err)
	}
}

// Concurrent batch queries share the lazily built index cache; run with
// -race to exercise the publication path.
func TestEngineConcurrentQueries(t *testing.T) {
	_, set, eng := buildEngine(t, adsketch.WithQueryParallelism(4))
	c := adsketch.NewCentrality(set)
	want := make([]float64, set.NumNodes())
	for v := range want {
		want[v] = c.Closeness(int32(v))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			nodes := make([]int32, 0, set.NumNodes())
			for v := w % 3; v < set.NumNodes(); v += 1 + w%3 {
				nodes = append(nodes, int32(v))
			}
			for rep := 0; rep < 5; rep++ {
				got, err := eng.Closeness(ctx, nodes...)
				if err != nil {
					errs <- err
					return
				}
				for i, v := range nodes {
					if got[i] != want[v] {
						t.Errorf("worker %d: closeness(%d) = %v, want %v", w, v, got[i], want[v])
						return
					}
				}
				if _, err := eng.TopCloseness(ctx, 5); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := eng.CachedIndices(); got != set.NumNodes() {
		t.Errorf("CachedIndices = %d, want %d", got, set.NumNodes())
	}
}

func TestEngineContextCancellation(t *testing.T) {
	_, set, eng := buildEngine(t, adsketch.WithQueryParallelism(2))
	nodes := make([]int32, set.NumNodes())
	for i := range nodes {
		nodes[i] = int32(i)
	}

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.Closeness(ctx, nodes...); !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
		if _, err := eng.TopCloseness(ctx, 3); !errors.Is(err, context.Canceled) {
			t.Errorf("TopCloseness err = %v, want context.Canceled", err)
		}
	})

	t.Run("mid-batch", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var calls atomic.Int64
		_, err := eng.EstimateQBatch(ctx, func(_ int32, _ float64) float64 {
			if calls.Add(1) == 10 {
				cancel()
			}
			return 1
		}, nodes...)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	})
}

// A cold engine answers a single-node query without building every index
// (laziness), then fills the cache on a full scan.
func TestEngineLazyIndexing(t *testing.T) {
	_, set, eng := buildEngine(t)
	if got := eng.CachedIndices(); got != 0 {
		t.Fatalf("fresh engine has %d cached indices", got)
	}
	if _, err := eng.Closeness(context.Background(), 7); err != nil {
		t.Fatal(err)
	}
	if got := eng.CachedIndices(); got != 1 {
		t.Errorf("after one query: %d cached indices, want 1", got)
	}
	if _, err := eng.TopCloseness(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := eng.CachedIndices(); got != set.NumNodes() {
		t.Errorf("after full scan: %d cached indices, want %d", got, set.NumNodes())
	}
	// The cached index answers repeated queries identically.
	idx, err := eng.Index(7)
	if err != nil {
		t.Fatal(err)
	}
	again, err := eng.Index(7)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Closeness() <= 0 || idx != again {
		t.Error("Index(7) not cached or implausible")
	}
	if _, err := eng.Index(-1); err == nil {
		t.Error("Index(-1) accepted")
	}
	if _, err := eng.Index(int32(set.NumNodes())); err == nil {
		t.Error("Index out of range accepted")
	}
}
