package adsketch_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adsketch"
)

// buildAllKinds returns one sketch set of each kind over the same graph.
func buildAllKinds(t *testing.T) map[string]adsketch.SketchSet {
	t.Helper()
	g := adsketch.WithRandomWeights(adsketch.GNP(90, 0.06, false, 11), 1, 4, 12)
	beta := make([]float64, g.NumNodes())
	for i := range beta {
		beta[i] = 0.5 + float64(i%5)
	}
	out := map[string]adsketch.SketchSet{}
	for name, opts := range map[string][]adsketch.Option{
		"uniform":           {adsketch.WithK(5), adsketch.WithSeed(3)},
		"uniform/kmins":     {adsketch.WithK(3), adsketch.WithSeed(3), adsketch.WithFlavor(adsketch.KMins)},
		"uniform/baseb":     {adsketch.WithK(5), adsketch.WithSeed(3), adsketch.WithBaseB(2)},
		"weighted":          {adsketch.WithK(5), adsketch.WithSeed(3), adsketch.WithNodeWeights(beta)},
		"weighted/priority": {adsketch.WithK(5), adsketch.WithSeed(3), adsketch.WithNodeWeights(beta), adsketch.WithPriorityRanks()},
		"approx":            {adsketch.WithK(5), adsketch.WithSeed(3), adsketch.WithApproxEps(0.25)},
	} {
		set, err := adsketch.Build(g, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = set
	}
	return out
}

// ReadSketchSet(WriteTo(set)) must reproduce identical estimates for all
// set kinds — the acceptance bar of the universal codec.
func TestWriteToReadSketchSetRoundTrip(t *testing.T) {
	for name, set := range buildAllKinds(t) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			n, err := set.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			got, err := adsketch.ReadSketchSet(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got.NumNodes() != set.NumNodes() || got.K() != set.K() || got.TotalEntries() != set.TotalEntries() {
				t.Fatalf("shape changed: (%d,%d,%d) vs (%d,%d,%d)",
					got.NumNodes(), got.K(), got.TotalEntries(),
					set.NumNodes(), set.K(), set.TotalEntries())
			}
			for v := int32(0); int(v) < set.NumNodes(); v++ {
				for _, d := range []float64{0, 1, 2.5, math.Inf(1)} {
					a := adsketch.EstimateNeighborhoodHIP(set.SketchOf(v), d)
					b := adsketch.EstimateNeighborhoodHIP(got.SketchOf(v), d)
					if a != b {
						t.Fatalf("node %d, d=%g: %g vs %g after round trip", v, d, a, b)
					}
				}
				a := adsketch.EstimateCentrality(set.SketchOf(v), adsketch.KernelHarmonic, adsketch.UnitBeta)
				b := adsketch.EstimateCentrality(got.SketchOf(v), adsketch.KernelHarmonic, adsketch.UnitBeta)
				if a != b {
					t.Fatalf("node %d: harmonic %g vs %g after round trip", v, a, b)
				}
			}
			// A second serialization is byte-identical (deterministic codec).
			var buf2 bytes.Buffer
			if _, err := got.WriteTo(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Error("re-serialization differs")
			}
			// The dynamic kind survives.
			switch set.(type) {
			case *adsketch.Set:
				if _, ok := got.(*adsketch.Set); !ok {
					t.Errorf("kind changed: %T -> %T", set, got)
				}
			case *adsketch.WeightedSet:
				ws, ok := got.(*adsketch.WeightedSet)
				if !ok {
					t.Fatalf("kind changed: %T -> %T", set, got)
				}
				if want := set.(*adsketch.WeightedSet).Sketch(0).Scheme(); ws.Sketch(0).Scheme() != want {
					t.Errorf("weight scheme changed: %v -> %v", want, ws.Sketch(0).Scheme())
				}
			case *adsketch.ApproxSet:
				as, ok := got.(*adsketch.ApproxSet)
				if !ok {
					t.Fatalf("kind changed: %T -> %T", set, got)
				}
				if want := set.(*adsketch.ApproxSet).Epsilon(); as.Epsilon() != want {
					t.Errorf("epsilon changed: %g -> %g", want, as.Epsilon())
				}
			}
		})
	}
}

func TestReadSketchSetRejectsBadHeaders(t *testing.T) {
	sets := buildAllKinds(t)
	var buf bytes.Buffer
	if _, err := sets["uniform"].WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Wrong magic.
	bad := append([]byte("NOPE"), data[4:]...)
	if _, err := adsketch.ReadSketchSet(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
	// Unsupported version.
	bad = append([]byte(nil), data...)
	bad[4] = 99
	if _, err := adsketch.ReadSketchSet(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
	// Unknown kind.
	bad = append([]byte(nil), data...)
	bad[8] = 77
	if _, err := adsketch.ReadSketchSet(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("bad kind: %v", err)
	}
	// Truncated.
	if _, err := adsketch.ReadSketchSet(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Error("truncated file accepted")
	}
	// Empty.
	if _, err := adsketch.ReadSketchSet(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}

	// The deprecated uniform-only reader refuses non-uniform kinds with a
	// pointer to ReadSketchSet.
	var wbuf bytes.Buffer
	if _, err := sets["weighted"].WriteTo(&wbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := adsketch.ReadSketches(bytes.NewReader(wbuf.Bytes())); err == nil || !strings.Contains(err.Error(), "ReadSketchSet") {
		t.Errorf("ReadSketches on weighted file: %v", err)
	}
}
