package adsketch_test

import (
	"bytes"
	"context"
	"os"
	"testing"
	"time"

	"adsketch"
)

// graphEdges extracts a graph's logical edge stream (one event per edge,
// u <= v for undirected graphs, matching WriteEdgeList's dedup).
func graphEdges(g *adsketch.Graph) []adsketch.Edge {
	var out []adsketch.Edge
	selfSeen := make(map[int32]int)
	g.ForEachArc(func(u, v int32, w float64) {
		if !g.Directed() {
			if u > v {
				return
			}
			if u == v {
				selfSeen[u]++
				if selfSeen[u]%2 == 0 {
					return
				}
			}
		}
		e := adsketch.Edge{U: u, V: v}
		if g.Weighted() {
			e.W = w
		}
		out = append(out, e)
	})
	return out
}

func serializeSet(t *testing.T, set adsketch.SketchSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := adsketch.WriteSketchSetV3(&buf, set); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestorFreezeMatchesRebuild is the acceptance-criteria parity test
// at the public API: a warm-started ingestor replaying the tail of an
// edge stream freezes to the byte-identical set a full Build of the final
// graph produces.
func TestIngestorFreezeMatchesRebuild(t *testing.T) {
	g := adsketch.WattsStrogatz(150, 6, 0.1, 3)
	edges := graphEdges(g)
	half := len(edges) / 2

	b := adsketch.NewGraphBuilder(g.NumNodes(), false)
	for _, e := range edges[:half] {
		b.AddEdge(e.U, e.V)
	}
	baseGraph := b.Build()
	base, err := adsketch.Build(baseGraph, adsketch.WithK(8), adsketch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	ing, err := adsketch.NewIngestor(baseGraph, base, adsketch.WithIngestCounters(2))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ing.InsertBatch(edges[half:]); err != nil || n != len(edges)-half {
		t.Fatalf("InsertBatch: n=%d err=%v", n, err)
	}
	res, err := ing.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	full, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serializeSet(t, res.Set), serializeSet(t, full)) {
		t.Fatal("frozen set differs from full rebuild")
	}
	if res.Nodes != g.NumNodes() || res.Entries != full.TotalEntries() {
		t.Fatalf("FreezeResult sizes %d/%d, want %d/%d", res.Nodes, res.Entries, g.NumNodes(), full.TotalEntries())
	}
	st := ing.Stats()
	if st.Maintainer.Edges != int64(len(edges)-half) || st.PendingEdges != 0 || st.Freezes != 1 {
		t.Fatalf("stats after freeze: %+v", st)
	}
}

// TestIngestorPublishesThroughCatalog drives the full publish path: edge
// batches trigger automatic freezes that hot-swap new catalog versions,
// and queries keep answering from published versions only.
func TestIngestorPublishesThroughCatalog(t *testing.T) {
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	ing, err := adsketch.NewEmptyIngestor(false, 8, 7,
		adsketch.WithPublish(cat, "live"),
		adsketch.WithFreezeEvery(16))
	if err != nil {
		t.Fatal(err)
	}
	src, err := adsketch.NewRandomEdgeSource(200, 100, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ing.Replay(src); err != nil || n != 100 {
		t.Fatalf("Replay: n=%d err=%v", n, err)
	}
	st := ing.Stats()
	if st.Freezes != 6 { // 100 edges / freeze-every 16
		t.Fatalf("Freezes = %d, want 6", st.Freezes)
	}
	if st.LastVersion != 6 || st.PendingEdges != 100-6*16 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PublishLagSeconds < 0 {
		t.Fatalf("PublishLagSeconds = %v after publishing", st.PublishLagSeconds)
	}
	resp, err := cat.Do(context.Background(), adsketch.Request{
		Dataset:      "live",
		Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: []int32{0}},
	})
	if err != nil || resp.Error != "" {
		t.Fatalf("query on published dataset: %v %q", err, resp.Error)
	}
	// The published version must equal a full rebuild of the ingested
	// prefix that was frozen (96 edges).
	res, err := ing.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 7 {
		t.Fatalf("explicit freeze published version %d, want 7", res.Version)
	}
	var edges []adsketch.Edge
	src2, _ := adsketch.NewRandomEdgeSource(200, 100, false, 5)
	for {
		e, ok := src2.Next()
		if !ok {
			break
		}
		edges = append(edges, e)
	}
	maxID := int32(-1)
	for _, e := range edges {
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
	}
	b := adsketch.NewGraphBuilder(int(maxID)+1, false)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	full, err := adsketch.Build(b.Build(), adsketch.WithK(8), adsketch.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serializeSet(t, res.Set), serializeSet(t, full)) {
		t.Fatal("published set differs from full rebuild of the ingested stream")
	}
}

// TestIngestorPublishDir persists each frozen version as a v3 file and
// serves it (optionally mmapped) from the catalog.
func TestIngestorPublishDir(t *testing.T) {
	for _, mmap := range []bool{false, true} {
		cat, err := adsketch.NewCatalog()
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		opts := []adsketch.IngestorOption{
			adsketch.WithPublish(cat, "filed"),
			adsketch.WithPublishDir(dir),
		}
		if mmap {
			opts = append(opts, adsketch.WithPublishMmap())
		}
		ing, err := adsketch.NewEmptyIngestor(false, 4, 9, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := int32(0); i < 20; i++ {
			if err := ing.Insert(i, (i+1)%20); err != nil {
				t.Fatal(err)
			}
		}
		res, err := ing.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		if res.Path == "" {
			t.Fatal("FreezeResult.Path empty with WithPublishDir")
		}
		if _, err := os.Stat(res.Path); err != nil {
			t.Fatalf("published file missing: %v", err)
		}
		sf, err := adsketch.OpenSketchFile(res.Path)
		if err != nil {
			t.Fatalf("published file unreadable: %v", err)
		}
		fset, ok := sf.Set().(*adsketch.Set)
		if !ok {
			t.Fatalf("published file holds %T, want *adsketch.Set", sf.Set())
		}
		if !bytes.Equal(serializeSet(t, fset), serializeSet(t, res.Set)) {
			t.Fatal("published file differs from the frozen set")
		}
		sf.Close()
		resp, err := cat.Do(context.Background(), adsketch.Request{
			Dataset:      "filed",
			Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: []int32{0}},
		})
		if err != nil || resp.Error != "" {
			t.Fatalf("query on file-published dataset (mmap=%v): %v %q", mmap, err, resp.Error)
		}
		for _, ds := range cat.Stats().Datasets {
			if ds.Name == "filed" && ds.Mmap != mmap {
				t.Fatalf("dataset mmap=%v, want %v", ds.Mmap, mmap)
			}
		}
		cat.Close()
	}
}

// TestIngestorReplayDeterminism: the same seeded stream replayed into two
// ingestors freezes to identical bytes; a different seed does not.
func TestIngestorReplayDeterminism(t *testing.T) {
	freeze := func(seed uint64) []byte {
		ing, err := adsketch.NewEmptyIngestor(false, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		src, err := adsketch.NewRandomEdgeSource(100, 300, true, seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ing.Replay(src); err != nil {
			t.Fatal(err)
		}
		res, err := ing.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		return serializeSet(t, res.Set)
	}
	a, b, c := freeze(11), freeze(11), freeze(12)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different frozen sets")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical frozen sets")
	}
}

func TestIngestorFreezeInterval(t *testing.T) {
	ing, err := adsketch.NewEmptyIngestor(false, 4, 2, adsketch.WithFreezeInterval(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 3; i++ {
		time.Sleep(time.Millisecond)
		if err := ing.Insert(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if st := ing.Stats(); st.Freezes < 3 {
		t.Fatalf("Freezes = %d with a nanosecond interval, want >= 3", st.Freezes)
	}
}

func TestIngestorOptionErrors(t *testing.T) {
	cat, err := adsketch.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	bad := [][]adsketch.IngestorOption{
		{adsketch.WithFreezeEvery(-1)},
		{adsketch.WithFreezeInterval(-time.Second)},
		{adsketch.WithPublish(nil, "x")},
		{adsketch.WithPublish(cat, "bad name")},
		{adsketch.WithPublishDir("")},
		{adsketch.WithPublishDir(t.TempDir())},                       // dir without publish
		{adsketch.WithPublish(cat, "x"), adsketch.WithPublishMmap()}, // mmap without dir
		{adsketch.WithIngestCounters(1)},
		{nil},
	}
	for i, opts := range bad {
		if _, err := adsketch.NewEmptyIngestor(false, 4, 1, opts...); err == nil {
			t.Fatalf("option set %d accepted", i)
		}
	}
	// Non-bottom-k sets are rejected.
	g := adsketch.Cycle(10)
	beta := make([]float64, 10)
	for i := range beta {
		beta[i] = 1
	}
	wset, err := adsketch.Build(g, adsketch.WithK(4), adsketch.WithSeed(1),
		adsketch.WithNodeWeights(beta))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adsketch.NewIngestor(g, wset); err == nil {
		t.Fatal("NewIngestor accepted a weighted set")
	}
	kset, err := adsketch.Build(g, adsketch.WithK(4), adsketch.WithSeed(1), adsketch.WithFlavor(adsketch.KMins))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adsketch.NewIngestor(g, kset); err == nil {
		t.Fatal("NewIngestor accepted a k-mins set")
	}
}
