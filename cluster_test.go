package adsketch_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"adsketch"
)

// parityRequests enumerates every protocol query kind, several
// parameterizations each — the corpus the coordinator must answer
// byte-identically to a single engine.
func parityRequests() []adsketch.Request {
	return []adsketch.Request{
		{ID: "cl", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 99, 100, 250, 399}}},
		{ID: "ha", Harmonic: &adsketch.HarmonicQuery{Nodes: []int32{399, 0, 150}}},
		{ID: "nb", Neighborhood: &adsketch.NeighborhoodQuery{Radius: 2, Nodes: []int32{0, 101, 399}}},
		{ID: "nu", Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: []int32{7, 210}}},
		{ID: "tc", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 10}},
		{ID: "th", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricHarmonic, K: 25}},
		{ID: "tb", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 100000}}, // K > n clamps
		{ID: "kt", CentralityKernel: &adsketch.CentralityKernelQuery{Kernel: adsketch.KernelNameThreshold, Radius: 3, Nodes: []int32{1, 200}}},
		{ID: "ke", CentralityKernel: &adsketch.CentralityKernelQuery{Kernel: adsketch.KernelNameExponential, Nodes: []int32{1, 200, 399}}},
		{ID: "kh", CentralityKernel: &adsketch.CentralityKernelQuery{Kernel: adsketch.KernelNameHarmonic, Nodes: []int32{42}}},
		{ID: "ja", Jaccard: &adsketch.JaccardQuery{A: 5, RadiusA: 2, B: 395, RadiusB: 2}}, // cross-shard pair
		{ID: "jb", Jaccard: &adsketch.JaccardQuery{A: 10, RadiusA: 3, B: 11, RadiusB: 3}}, // same-shard pair
		{ID: "iu", Influence: &adsketch.InfluenceQuery{Seeds: []int32{0, 150, 399}, Radius: 2}},
		{ID: "ig", Influence: &adsketch.InfluenceQuery{NumSeeds: 3, Candidates: []int32{0, 99, 100, 250, 399}, Radius: 2}},
		{ID: "ia", Influence: &adsketch.InfluenceQuery{NumSeeds: 2, Radius: 2}}, // candidates = all nodes
		{ID: "db", DistanceBound: &adsketch.DistanceBoundQuery{A: 3, B: 398}},
		{ID: "sk", Sketch: &adsketch.SketchQuery{Node: 399}},
	}
}

// buildCluster builds one engine over the whole set and a coordinator
// over a 4-partition in-process split of the same set.
func buildCluster(t *testing.T) (*adsketch.Engine, *adsketch.Coordinator) {
	t.Helper()
	_, set, eng := buildEngine(t)
	coord, err := adsketch.NewPartitionedEngine(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	if coord.NumShards() != 4 || coord.NumNodes() != set.NumNodes() || coord.K() != set.K() {
		t.Fatalf("coordinator shape: %d shards, %d nodes, k=%d", coord.NumShards(), coord.NumNodes(), coord.K())
	}
	return eng, coord
}

// The acceptance criterion: a 4-partition split answers every protocol
// query kind byte-identically to the unpartitioned set.
func TestCoordinatorParityAllKinds(t *testing.T) {
	eng, coord := buildCluster(t)
	ctx := context.Background()
	for _, req := range parityRequests() {
		t.Run(req.ID, func(t *testing.T) {
			want, err := eng.Do(ctx, req)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			got, err := coord.Do(ctx, req)
			if err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("coordinator response differs:\n  coordinator %s\n  single      %s", gotJSON, wantJSON)
			}
		})
	}
}

// The same parity must hold through DoBatch, with per-request errors
// confined to their slots.
func TestCoordinatorBatchParity(t *testing.T) {
	eng, coord := buildCluster(t)
	reqs := append(parityRequests(),
		adsketch.Request{ID: "bad", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{-1}}})
	want, err := eng.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d responses, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Error != "" {
			if got[i].Error == "" {
				t.Errorf("request %s: coordinator succeeded where engine errored", reqs[i].ID)
			}
			continue
		}
		wantJSON, _ := json.Marshal(want[i])
		gotJSON, _ := json.Marshal(got[i])
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("request %s differs:\n  coordinator %s\n  single      %s", reqs[i].ID, gotJSON, wantJSON)
		}
	}
}

// Explain attaches merge metadata naming the consulted shards; without
// it the field stays absent (preserving byte parity).
func TestCoordinatorExplain(t *testing.T) {
	_, coord := buildCluster(t)
	ctx := context.Background()
	resp, err := coord.Do(ctx, adsketch.Request{
		Explain:   true,
		Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 399}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Merge == nil || resp.Merge.Partials != 2 || !reflect.DeepEqual(resp.Merge.Shards, []int{0, 3}) {
		t.Errorf("merge meta: %+v", resp.Merge)
	}
	resp2, err := coord.Do(ctx, adsketch.Request{
		Explain: true,
		TopK:    &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Merge == nil || resp2.Merge.Partials != 4 {
		t.Errorf("topk merge meta: %+v", resp2.Merge)
	}
	plain, err := coord.Do(ctx, adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Merge != nil {
		t.Errorf("merge meta attached without Explain: %+v", plain.Merge)
	}
}

// A shard engine answers for exactly the global node IDs it owns.
func TestShardEngineOwnership(t *testing.T) {
	_, set, _ := buildEngine(t)
	parts, err := adsketch.SplitSketchSet(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := adsketch.NewShardEngine(parts[2])
	if err != nil {
		t.Fatal(err)
	}
	meta := shard.Meta()
	if meta.Index != 2 || meta.Count != 4 || meta.TotalNodes != set.NumNodes() {
		t.Fatalf("shard meta: %+v", meta)
	}
	ctx := context.Background()
	owned := meta.Lo
	full, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Closeness(ctx, owned)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shard.Closeness(ctx, owned)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Errorf("shard closeness(%d) = %v, single %v", owned, got[0], want[0])
	}
	// Unowned (but globally valid) nodes are rejected as bad requests.
	if _, err := shard.Closeness(ctx, meta.Hi); !errors.Is(err, adsketch.ErrBadRequest) {
		t.Errorf("unowned node error = %v, want ErrBadRequest", err)
	}
	// Shard topk ranks only owned nodes, with global IDs.
	top, err := shard.TopCloseness(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range top {
		if r.Node < meta.Lo || r.Node >= meta.Hi {
			t.Errorf("shard ranking contains unowned node %d", r.Node)
		}
	}
}

// Coordinators compose: a coordinator over {coordinator, engine} backends
// still answers bit-for-bit.
func TestCoordinatorNesting(t *testing.T) {
	_, set, eng := buildEngine(t)
	parts, err := adsketch.SplitSketchSet(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Left half: a nested 2-way coordinator serving partition 0's range is
	// not possible (it reports the full range), so nest the whole thing:
	// a 1-backend coordinator over a 2-way split coordinator.
	inner, err := adsketch.NewPartitionedEngine(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := adsketch.NewCoordinator([]adsketch.ShardBackend{inner})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := adsketch.Request{TopK: &adsketch.TopKQuery{Metric: adsketch.MetricHarmonic, K: 7}}
	want, err := eng.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := outer.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("nested coordinator differs:\n  %s\n  %s", gotJSON, wantJSON)
	}
	_ = parts
}

func TestCoordinatorValidation(t *testing.T) {
	_, set, eng := buildEngine(t)
	if _, err := adsketch.NewCoordinator(nil); err == nil {
		t.Error("empty coordinator accepted")
	}
	parts, err := adsketch.SplitSketchSet(set, 3)
	if err != nil {
		t.Fatal(err)
	}
	shard0, err := adsketch.NewShardEngine(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	// Incomplete cover.
	if _, err := adsketch.NewCoordinator([]adsketch.ShardBackend{shard0}); err == nil {
		t.Error("incomplete cover accepted")
	}
	// Mismatched splits (whole engine + shard of the same node space
	// overlap).
	if _, err := adsketch.NewCoordinator([]adsketch.ShardBackend{eng, shard0}); err == nil {
		t.Error("overlapping shards accepted")
	}
}

// The race-condition satellite: many goroutines driving DoBatch through
// the coordinator (per-shard engines, concurrent scatters, shared
// caches) must be data-race free and agree with the single engine.
// Run with -race in CI.
func TestCoordinatorConcurrentDoBatch(t *testing.T) {
	eng, coord := buildCluster(t)
	ctx := context.Background()
	reqs := parityRequests()
	want, err := eng.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := make([]string, len(want))
	for i := range want {
		b, _ := json.Marshal(want[i])
		wantJSON[i] = string(b)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				got, err := coord.DoBatch(ctx, reqs)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					b, _ := json.Marshal(got[i])
					if string(b) != wantJSON[i] {
						errs <- fmt.Errorf("goroutine %d iter %d request %s: %s != %s", w, iter, reqs[i].ID, b, wantJSON[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The shared cache stats must aggregate across the per-partition
	// engines: everything queried, so every slot eventually builds.
	st := coord.CacheStats()
	if st.Slots != coord.NumNodes() || st.Built == 0 || st.Hits == 0 {
		t.Errorf("aggregated cache stats: %+v", st)
	}
}
